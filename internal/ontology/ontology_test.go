package ontology

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestAddTermValidation(t *testing.T) {
	o := New()
	if err := o.AddTerm(Term{ID: "", Name: "x"}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := o.AddTerm(Term{ID: "T1", Name: ""}); err == nil {
		t.Error("empty Name accepted")
	}
	if err := o.AddTerm(Term{ID: "T1", Name: "alpha"}); err != nil {
		t.Fatal(err)
	}
	if err := o.AddTerm(Term{ID: "T1", Name: "beta"}); err == nil {
		t.Error("duplicate ID accepted")
	}
}

func TestResolveCanonicalName(t *testing.T) {
	o := Standard()
	term, err := o.Resolve("gene", "")
	if err != nil || term.ID != "GA:0004" {
		t.Errorf("Resolve(gene) = %+v, %v", term, err)
	}
	// Case and whitespace insensitivity.
	term, err = o.Resolve("  GENE ", "anything")
	if err != nil || term.ID != "GA:0004" {
		t.Errorf("Resolve normalized = %+v, %v", term, err)
	}
}

func TestResolveSynonyms(t *testing.T) {
	o := Standard()
	cases := []struct {
		label, context, wantID string
	}{
		{"locus", "genbank", "GA:0004"},
		{"cds", "acedb", "GA:0004"},
		{"transcript", "acedb", "GA:0006"},
		{"polypeptide", "", "GA:0007"},
		{"product", "swisslike", "GA:0007"},
		{"premrna", "", "GA:0005"},
		{"pre-mRNA", "", "GA:0005"},
	}
	for _, c := range cases {
		term, err := o.Resolve(c.label, c.context)
		if err != nil || term.ID != c.wantID {
			t.Errorf("Resolve(%q,%q) = %+v, %v; want %s", c.label, c.context, term, err, c.wantID)
		}
	}
}

func TestResolveUnknown(t *testing.T) {
	o := Standard()
	if _, err := o.Resolve("flux_capacitor", ""); err == nil {
		t.Error("unknown label resolved")
	}
}

func TestHomonymDisambiguation(t *testing.T) {
	o := Standard()
	// "clone" in sequencing context -> clone_fragment.
	term, err := o.Resolve("clone", "sequencing")
	if err != nil || term.ID != "GA:0011" {
		t.Errorf("clone/sequencing = %+v, %v", term, err)
	}
	term, err = o.Resolve("clone", "culture")
	if err != nil || term.ID != "GA:0012" {
		t.Errorf("clone/culture = %+v, %v", term, err)
	}
	// Without context the homonym is irreducibly ambiguous.
	_, err = o.Resolve("clone", "")
	var ae *AmbiguousError
	if !errors.As(err, &ae) {
		t.Fatalf("ambiguity not reported: %v", err)
	}
	if len(ae.Candidates) != 2 {
		t.Errorf("candidates = %v", ae.Candidates)
	}
	if !strings.Contains(ae.Error(), "clone") {
		t.Errorf("error message = %q", ae.Error())
	}
}

func TestContextScopedBeatsContextFree(t *testing.T) {
	o := New()
	if err := o.AddTerm(Term{ID: "T1", Name: "alpha"}); err != nil {
		t.Fatal(err)
	}
	if err := o.AddTerm(Term{ID: "T2", Name: "beta"}); err != nil {
		t.Fatal(err)
	}
	// "x" is context-free synonym of T1 but scoped synonym of T2 in ctx.
	if err := o.AddSynonym("T1", "x", ""); err != nil {
		t.Fatal(err)
	}
	if err := o.AddSynonym("T2", "x", "ctx"); err != nil {
		t.Fatal(err)
	}
	term, err := o.Resolve("x", "ctx")
	if err != nil || term.ID != "T2" {
		t.Errorf("scoped resolve = %+v, %v", term, err)
	}
	term, err = o.Resolve("x", "other")
	if err != nil || term.ID != "T1" {
		t.Errorf("fallback resolve = %+v, %v", term, err)
	}
}

func TestAddSynonymValidation(t *testing.T) {
	o := New()
	if err := o.AddSynonym("nosuch", "label", ""); err == nil {
		t.Error("synonym for unknown term accepted")
	}
	if err := o.AddTerm(Term{ID: "T1", Name: "alpha"}); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := o.AddSynonym("T1", "a", ""); err != nil {
		t.Fatal(err)
	}
	if err := o.AddSynonym("T1", "a", ""); err != nil {
		t.Fatal(err)
	}
	term, err := o.Resolve("a", "")
	if err != nil || term.ID != "T1" {
		t.Errorf("idempotent synonym broke resolution: %+v, %v", term, err)
	}
}

func TestRelations(t *testing.T) {
	o := Standard()
	// mrna derives-from primarytranscript.
	rel := o.Related("GA:0006", DerivesFrom)
	if len(rel) != 1 || rel[0] != "GA:0005" {
		t.Errorf("mrna derives-from = %v", rel)
	}
	// gene part-of chromosome.
	rel = o.Related("GA:0004", PartOf)
	if len(rel) != 1 || rel[0] != "GA:0008" {
		t.Errorf("gene part-of = %v", rel)
	}
	if got := o.Related("GA:0004", DerivesFrom); len(got) != 0 {
		t.Errorf("gene derives-from = %v", got)
	}
}

func TestRelateValidation(t *testing.T) {
	o := New()
	if err := o.AddTerm(Term{ID: "T1", Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Relate("T1", IsA, "nosuch"); err == nil {
		t.Error("relation to unknown term accepted")
	}
	if err := o.Relate("nosuch", IsA, "T1"); err == nil {
		t.Error("relation from unknown term accepted")
	}
}

func TestIsATransitive(t *testing.T) {
	o := New()
	for _, id := range []string{"A", "B", "C", "D"} {
		if err := o.AddTerm(Term{ID: id, Name: strings.ToLower(id)}); err != nil {
			t.Fatal(err)
		}
	}
	// A is-a B is-a C; D unrelated.
	if err := o.Relate("A", IsA, "B"); err != nil {
		t.Fatal(err)
	}
	if err := o.Relate("B", IsA, "C"); err != nil {
		t.Fatal(err)
	}
	if !o.IsA("A", "C") {
		t.Error("transitive is-a failed")
	}
	if !o.IsA("A", "A") {
		t.Error("reflexive is-a failed")
	}
	if o.IsA("A", "D") {
		t.Error("phantom is-a")
	}
	// Cycle safety.
	if err := o.Relate("C", IsA, "A"); err != nil {
		t.Fatal(err)
	}
	if o.IsA("A", "D") {
		t.Error("cycle broke is-a")
	}
}

func TestStandardMapsToAlgebraSorts(t *testing.T) {
	o := Standard()
	// Every GDT sort is reachable from the ontology.
	wantSorts := []string{"nucleotide", "dna", "rna", "gene", "primarytranscript",
		"mrna", "protein", "chromosome", "genome", "annotation"}
	have := map[string]bool{}
	for _, term := range o.Terms() {
		if term.AlgebraSort != "" {
			have[term.AlgebraSort] = true
		}
	}
	for _, s := range wantSorts {
		if !have[s] {
			t.Errorf("no ontology term maps to sort %q", s)
		}
	}
}

func TestTermsOrdered(t *testing.T) {
	o := Standard()
	terms := o.Terms()
	if len(terms) < 12 {
		t.Fatalf("Standard has %d terms", len(terms))
	}
	for i := 1; i < len(terms); i++ {
		if terms[i-1].ID >= terms[i].ID {
			t.Errorf("terms unordered at %d: %s >= %s", i, terms[i-1].ID, terms[i].ID)
		}
	}
}

func TestRelationString(t *testing.T) {
	if IsA.String() != "is-a" || PartOf.String() != "part-of" || DerivesFrom.String() != "derives-from" {
		t.Error("relation names wrong")
	}
	if !strings.Contains(Relation(9).String(), "9") {
		t.Error("unknown relation rendering")
	}
}

func TestConcurrentAccess(t *testing.T) {
	o := Standard()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = o.AddSynonym("GA:0004", "gen", "ctx")
		}
	}()
	for i := 0; i < 200; i++ {
		if _, err := o.Resolve("gene", ""); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}

func TestOBORoundTrip(t *testing.T) {
	src := Standard()
	var buf bytes.Buffer
	if err := src.WriteOBO(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "[Term]") || !strings.Contains(text, "id: GA:0004") {
		t.Fatalf("obo output missing stanzas:\n%s", text)
	}
	got, err := ParseOBO(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same terms.
	srcTerms, gotTerms := src.Terms(), got.Terms()
	if len(srcTerms) != len(gotTerms) {
		t.Fatalf("terms = %d, want %d", len(gotTerms), len(srcTerms))
	}
	for i := range srcTerms {
		if srcTerms[i] != gotTerms[i] {
			t.Errorf("term %d differs: %+v vs %+v", i, gotTerms[i], srcTerms[i])
		}
	}
	// Synonym resolution behaves identically, including homonym contexts.
	cases := []struct{ label, context string }{
		{"locus", "genbank"}, {"clone", "sequencing"}, {"clone", "culture"},
		{"premrna", ""}, {"gene", ""},
	}
	for _, c := range cases {
		want, werr := src.Resolve(c.label, c.context)
		have, herr := got.Resolve(c.label, c.context)
		if (werr == nil) != (herr == nil) || (werr == nil && want.ID != have.ID) {
			t.Errorf("Resolve(%q,%q): %v/%v vs %v/%v", c.label, c.context, want.ID, werr, have.ID, herr)
		}
	}
	// Ambiguity preserved.
	if _, err := got.Resolve("clone", ""); err == nil {
		t.Error("homonym ambiguity lost across round-trip")
	}
	// Relations preserved.
	if !got.IsA("GA:0006", "GA:0003") {
		t.Error("is-a lost")
	}
	if rel := got.Related("GA:0004", PartOf); len(rel) != 1 || rel[0] != "GA:0008" {
		t.Errorf("part-of lost: %v", rel)
	}
	// A second write produces identical bytes (canonical form).
	var buf2 bytes.Buffer
	if err := got.WriteOBO(&buf2); err != nil {
		t.Fatal(err)
	}
	if text != buf2.String() {
		t.Error("OBO serialization not canonical")
	}
}

func TestParseOBORejectsCorrupt(t *testing.T) {
	cases := []string{
		"id: X\n",                              // attribute outside stanza
		"[Term]\nbogus-line\n",                 // malformed line
		"[Term]\nid: A\nname: a\nnosuch: v\n",  // unknown key
		"[Term]\nid: A\nname: a\nsynonym: x\n", // unquoted synonym
		"[Term]\nid: A\nname: a\nrelationship: bogus B\n",
		"[Term]\nid: A\nname: a\nis_a: NOPE\n",             // dangling relation
		"[Term]\nid: A\nname: a\n[Term]\nid: A\nname: b\n", // dup id
	}
	for i, c := range cases {
		if _, err := ParseOBO(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: corrupt OBO accepted", i)
		}
	}
}
