// Package ontology implements the controlled vocabulary of the paper's
// Section 4.1: a set of canonical terms with synonyms, homonym contexts,
// and is-a/part-of relations, plus the mapping of ontology entities and
// functions onto the sorts and operators of the Genomics Algebra.
//
// The paper's problem statement drives the design: repositories use
// terminological variants (synonyms, aliases), and the same word can carry
// different meanings in different biological contexts (homonyms). The
// ontology resolves repository-specific labels to canonical terms; homonyms
// are disambiguated by context, and — per the paper — when one term carries
// conflicting meanings, "the only solution is to coin a new, appropriate,
// and unique term for each context".
package ontology

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Relation is a typed edge between ontology terms.
type Relation uint8

// Relation kinds follow the Gene Ontology convention.
const (
	IsA Relation = iota
	PartOf
	DerivesFrom
)

// String implements fmt.Stringer.
func (r Relation) String() string {
	switch r {
	case IsA:
		return "is-a"
	case PartOf:
		return "part-of"
	case DerivesFrom:
		return "derives-from"
	}
	return fmt.Sprintf("relation(%d)", uint8(r))
}

// Term is a canonical ontology term.
type Term struct {
	// ID is the unique canonical identifier, e.g. "GA:0001".
	ID string
	// Name is the canonical name, e.g. "gene".
	Name string
	// Definition is the human-readable definition.
	Definition string
	// AlgebraSort names the Genomics Algebra sort the term maps to, empty
	// if the term has no direct data-type counterpart.
	AlgebraSort string
}

// edge is a typed relation instance.
type edge struct {
	rel Relation
	to  string // target term ID
}

// Ontology is a thread-safe term registry with synonym resolution and
// relation queries. The zero value is not usable; call New or Standard.
type Ontology struct {
	mu    sync.RWMutex
	terms map[string]Term // by ID
	// synonyms maps a normalized label to candidate term IDs. More than one
	// candidate means the label is a homonym needing context.
	synonyms map[string][]synonymEntry
	edges    map[string][]edge
}

type synonymEntry struct {
	termID string
	// context disambiguates homonyms; empty matches any context.
	context string
}

// New returns an empty ontology.
func New() *Ontology {
	return &Ontology{
		terms:    make(map[string]Term),
		synonyms: make(map[string][]synonymEntry),
		edges:    make(map[string][]edge),
	}
}

func normalize(label string) string {
	return strings.ToLower(strings.TrimSpace(label))
}

// AddTerm registers a canonical term; its Name becomes a synonym of itself.
// Re-adding an existing ID is an error (canonical IDs are immutable).
func (o *Ontology) AddTerm(t Term) error {
	if t.ID == "" || t.Name == "" {
		return fmt.Errorf("ontology: term must have ID and Name: %+v", t)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, exists := o.terms[t.ID]; exists {
		return fmt.Errorf("ontology: duplicate term ID %q", t.ID)
	}
	o.terms[t.ID] = t
	o.synonyms[normalize(t.Name)] = append(o.synonyms[normalize(t.Name)], synonymEntry{termID: t.ID})
	return nil
}

// AddSynonym registers label as a synonym of the term, optionally scoped to
// a context (for homonyms). An empty context matches any lookup context.
func (o *Ontology) AddSynonym(termID, label, context string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.terms[termID]; !ok {
		return fmt.Errorf("ontology: synonym for unknown term %q", termID)
	}
	key := normalize(label)
	for _, e := range o.synonyms[key] {
		if e.termID == termID && e.context == context {
			return nil // idempotent
		}
	}
	o.synonyms[key] = append(o.synonyms[key], synonymEntry{termID: termID, context: context})
	return nil
}

// Relate adds a typed relation from one term to another.
func (o *Ontology) Relate(fromID string, rel Relation, toID string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.terms[fromID]; !ok {
		return fmt.Errorf("ontology: relation from unknown term %q", fromID)
	}
	if _, ok := o.terms[toID]; !ok {
		return fmt.Errorf("ontology: relation to unknown term %q", toID)
	}
	o.edges[fromID] = append(o.edges[fromID], edge{rel: rel, to: toID})
	return nil
}

// Term returns the term with the given canonical ID.
func (o *Ontology) Term(id string) (Term, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	t, ok := o.terms[id]
	return t, ok
}

// AmbiguousError reports a homonym lookup that context failed to
// disambiguate; Candidates lists the competing term IDs.
type AmbiguousError struct {
	Label      string
	Context    string
	Candidates []string
}

func (e *AmbiguousError) Error() string {
	return fmt.Sprintf("ontology: label %q is ambiguous in context %q: candidates %v",
		e.Label, e.Context, e.Candidates)
}

// Resolve maps a repository-specific label to its canonical term. Context
// (e.g. the source repository name or a domain tag) disambiguates homonyms:
// a context-scoped synonym beats context-free ones. Unknown labels return
// ok=false; irreducibly ambiguous labels return *AmbiguousError.
func (o *Ontology) Resolve(label, context string) (Term, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	entries := o.synonyms[normalize(label)]
	if len(entries) == 0 {
		return Term{}, fmt.Errorf("ontology: unknown label %q", label)
	}
	// Pass 1: exact-context matches.
	var matches []string
	for _, e := range entries {
		if e.context != "" && e.context == context {
			matches = append(matches, e.termID)
		}
	}
	// Pass 2: context-free matches.
	if len(matches) == 0 {
		for _, e := range entries {
			if e.context == "" {
				matches = append(matches, e.termID)
			}
		}
	}
	matches = dedupe(matches)
	switch len(matches) {
	case 0:
		candidates := make([]string, 0, len(entries))
		for _, e := range entries {
			candidates = append(candidates, e.termID)
		}
		return Term{}, &AmbiguousError{Label: label, Context: context, Candidates: dedupe(candidates)}
	case 1:
		return o.terms[matches[0]], nil
	default:
		return Term{}, &AmbiguousError{Label: label, Context: context, Candidates: matches}
	}
}

func dedupe(ids []string) []string {
	seen := map[string]bool{}
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// Related returns the IDs of terms reachable from id by one hop of the
// given relation, in lexical order.
func (o *Ontology) Related(id string, rel Relation) []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var out []string
	for _, e := range o.edges[id] {
		if e.rel == rel {
			out = append(out, e.to)
		}
	}
	sort.Strings(out)
	return out
}

// IsA reports whether term id transitively is-a ancestor.
func (o *Ontology) IsA(id, ancestor string) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	seen := map[string]bool{}
	var walk func(cur string) bool
	walk = func(cur string) bool {
		if cur == ancestor {
			return true
		}
		if seen[cur] {
			return false
		}
		seen[cur] = true
		for _, e := range o.edges[cur] {
			if e.rel == IsA && walk(e.to) {
				return true
			}
		}
		return false
	}
	return walk(id)
}

// Terms returns all terms ordered by ID.
func (o *Ontology) Terms() []Term {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([]Term, 0, len(o.terms))
	for _, t := range o.terms {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Standard builds the genomic ontology that the kernel algebra instantiates:
// one term per GDT with the synonym variants observed across the synthetic
// repositories, plus structural relations (mrna derives-from
// primarytranscript derives-from gene; gene part-of chromosome part-of
// genome).
func Standard() *Ontology {
	o := New()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	add := func(id, name, def, sort string) {
		must(o.AddTerm(Term{ID: id, Name: name, Definition: def, AlgebraSort: sort}))
	}
	add("GA:0001", "nucleotide", "a single DNA or RNA base", "nucleotide")
	add("GA:0002", "dna", "a deoxyribonucleic acid sequence", "dna")
	add("GA:0003", "rna", "a ribonucleic acid sequence", "rna")
	add("GA:0004", "gene", "a heritable unit of genomic sequence with exon structure", "gene")
	add("GA:0005", "primarytranscript", "the unspliced RNA copy of a gene", "primarytranscript")
	add("GA:0006", "mrna", "a mature spliced messenger RNA", "mrna")
	add("GA:0007", "protein", "an amino-acid sequence", "protein")
	add("GA:0008", "chromosome", "a chromosome sequence with gene loci", "chromosome")
	add("GA:0009", "genome", "the full chromosome complement of an organism", "genome")
	add("GA:0010", "annotation", "curator- or user-attached metadata on a region", "annotation")

	// Synonym variants seen across repository formats.
	must(o.AddSynonym("GA:0002", "sequence", "genbank"))    // GenBank calls the record body "sequence"
	must(o.AddSynonym("GA:0002", "nucleic_acid", ""))       //
	must(o.AddSynonym("GA:0004", "locus", "genbank"))       // GenBank LOCUS lines
	must(o.AddSynonym("GA:0004", "cds", "acedb"))           // ACeDB-style coding entries
	must(o.AddSynonym("GA:0006", "transcript", "acedb"))    //
	must(o.AddSynonym("GA:0006", "messenger", ""))          //
	must(o.AddSynonym("GA:0007", "polypeptide", ""))        //
	must(o.AddSynonym("GA:0007", "product", "swisslike"))   // protein DBs call it the product
	must(o.AddSynonym("GA:0010", "comment", "genbank"))     //
	must(o.AddSynonym("GA:0010", "note", "acedb"))          //
	must(o.AddSynonym("GA:0005", "premrna", ""))            //
	must(o.AddSynonym("GA:0005", "pre-mrna", ""))           //
	must(o.AddSynonym("GA:0008", "linkage_group", "acedb")) //

	// The classic homonym: "clone" means a DNA fragment in sequencing
	// context but a cell-line descendant in culture context. Per the
	// paper, each context gets its own canonical term.
	add("GA:0011", "clone_fragment", "a cloned DNA fragment (sequencing context)", "dna")
	add("GA:0012", "clone_cellline", "a clonal cell population (culture context)", "")
	must(o.AddSynonym("GA:0011", "clone", "sequencing"))
	must(o.AddSynonym("GA:0012", "clone", "culture"))

	// Structural relations.
	must(o.Relate("GA:0005", DerivesFrom, "GA:0004")) // primary transcript derives-from gene
	must(o.Relate("GA:0006", DerivesFrom, "GA:0005")) // mrna derives-from primary transcript
	must(o.Relate("GA:0007", DerivesFrom, "GA:0006")) // protein derives-from mrna
	must(o.Relate("GA:0004", PartOf, "GA:0008"))      // gene part-of chromosome
	must(o.Relate("GA:0008", PartOf, "GA:0009"))      // chromosome part-of genome
	must(o.Relate("GA:0006", IsA, "GA:0003"))         // mrna is-a rna
	must(o.Relate("GA:0005", IsA, "GA:0003"))         // primary transcript is-a rna
	must(o.Relate("GA:0011", IsA, "GA:0002"))         // clone fragment is-a dna
	return o
}
