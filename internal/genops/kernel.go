package genops

import (
	"fmt"

	"genalg/internal/align"
	"genalg/internal/core"
	"genalg/internal/gdt"
	"genalg/internal/seq"
)

// Genomic sorts registered by the kernel, mirroring gdt kinds.
const (
	SortNucleotide        core.Sort = "nucleotide"
	SortDNA               core.Sort = "dna"
	SortRNA               core.Sort = "rna"
	SortPrimaryTranscript core.Sort = "primarytranscript"
	SortMRNA              core.Sort = "mrna"
	SortProtein           core.Sort = "protein"
	SortGene              core.Sort = "gene"
	SortChromosome        core.Sort = "chromosome"
	SortGenome            core.Sort = "genome"
	SortAnnotation        core.Sort = "annotation"
)

// Kernel is the kernel algebra of the paper (Section 4.2): the genomic
// signature plus its implementing algebra, usable stand-alone as a software
// library or plugged into the Unifying Database through the adapter.
type Kernel struct {
	Sig *core.Signature
	Alg *core.Algebra
}

// NewKernel builds the genomic kernel algebra with all sorts and operations
// registered. The kernel is extensible afterwards: callers may register
// additional sorts and operations at any time (requirements C13/C14).
func NewKernel() *Kernel {
	sig := core.NewSignature()
	sig.AddSort(SortNucleotide, SortDNA, SortRNA, SortPrimaryTranscript,
		SortMRNA, SortProtein, SortGene, SortChromosome, SortGenome, SortAnnotation)
	alg := core.NewAlgebra(sig)
	k := &Kernel{Sig: sig, Alg: alg}
	k.registerCarriers()
	k.registerOps()
	return k
}

func kindCarrier[T gdt.Value]() core.CarrierCheck {
	return func(v any) bool { _, ok := v.(T); return ok }
}

func (k *Kernel) registerCarriers() {
	k.Alg.SetCarrier(SortNucleotide, kindCarrier[gdt.Nucleotide]())
	k.Alg.SetCarrier(SortDNA, kindCarrier[gdt.DNA]())
	k.Alg.SetCarrier(SortRNA, kindCarrier[gdt.RNA]())
	k.Alg.SetCarrier(SortPrimaryTranscript, kindCarrier[gdt.PrimaryTranscript]())
	k.Alg.SetCarrier(SortMRNA, kindCarrier[gdt.MRNA]())
	k.Alg.SetCarrier(SortProtein, kindCarrier[gdt.Protein]())
	k.Alg.SetCarrier(SortGene, kindCarrier[gdt.Gene]())
	k.Alg.SetCarrier(SortChromosome, kindCarrier[gdt.Chromosome]())
	k.Alg.SetCarrier(SortGenome, kindCarrier[gdt.Genome]())
	k.Alg.SetCarrier(SortAnnotation, kindCarrier[gdt.Annotation]())
}

func (k *Kernel) registerOps() {
	reg := k.Alg.MustRegister

	// The paper's mini algebra (Section 4.2).
	reg(core.OpSig{Name: "transcribe", Args: []core.Sort{SortGene}, Result: SortPrimaryTranscript,
		Doc: "primary transcript of a gene"},
		func(args []any) (any, error) { return Transcribe(args[0].(gdt.Gene)) })
	reg(core.OpSig{Name: "splice", Args: []core.Sort{SortPrimaryTranscript}, Result: SortMRNA,
		Doc: "canonical mature mRNA of a primary transcript (see Splice for isoform uncertainty)"},
		func(args []any) (any, error) { return SpliceCanonical(args[0].(gdt.PrimaryTranscript)) })
	reg(core.OpSig{Name: "translate", Args: []core.Sort{SortMRNA}, Result: SortProtein,
		Doc: "protein encoded by an mRNA"},
		func(args []any) (any, error) { return Translate(args[0].(gdt.MRNA)) })
	reg(core.OpSig{Name: "decode", Args: []core.Sort{SortDNA}, Result: SortProtein,
		Doc: "protein of the longest ORF in a DNA fragment", Cost: 4},
		func(args []any) (any, error) { return Decode(args[0].(gdt.DNA)) })

	// Sequence accessors and derived quantities.
	reg(core.OpSig{Name: "reversecomplement", Args: []core.Sort{SortDNA}, Result: SortDNA,
		Doc: "reverse complement of a DNA fragment"},
		func(args []any) (any, error) {
			d := args[0].(gdt.DNA)
			return gdt.DNA{ID: d.ID + ".rc", Seq: d.Seq.ReverseComplement()}, nil
		})
	reg(core.OpSig{Name: "gccontent", Args: []core.Sort{SortDNA}, Result: core.SortFloat,
		Doc: "GC fraction of a DNA fragment"},
		func(args []any) (any, error) { return args[0].(gdt.DNA).Seq.GCContent(), nil })
	reg(core.OpSig{Name: "length", Args: []core.Sort{SortDNA}, Result: core.SortInt,
		Doc: "length in bases"},
		func(args []any) (any, error) { return int64(args[0].(gdt.DNA).Seq.Len()), nil })
	reg(core.OpSig{Name: "length", Args: []core.Sort{SortRNA}, Result: core.SortInt,
		Doc: "length in bases"},
		func(args []any) (any, error) { return int64(args[0].(gdt.RNA).Seq.Len()), nil })
	reg(core.OpSig{Name: "length", Args: []core.Sort{SortMRNA}, Result: core.SortInt,
		Doc: "length in bases"},
		func(args []any) (any, error) { return int64(args[0].(gdt.MRNA).Seq.Len()), nil })
	reg(core.OpSig{Name: "length", Args: []core.Sort{SortProtein}, Result: core.SortInt,
		Doc: "length in residues"},
		func(args []any) (any, error) { return int64(args[0].(gdt.Protein).Seq.Len()), nil })
	reg(core.OpSig{Name: "length", Args: []core.Sort{SortGene}, Result: core.SortInt,
		Doc: "gene length in bases"},
		func(args []any) (any, error) { return int64(args[0].(gdt.Gene).Seq.Len()), nil })

	// Predicates (selectivities feed the planner, paper Section 6.5).
	reg(core.OpSig{Name: "contains", Args: []core.Sort{SortDNA, core.SortString}, Result: core.SortBool,
		Doc: "true if the fragment contains the nucleotide pattern", Selectivity: 0.05, Cost: 2},
		func(args []any) (any, error) { return Contains(args[0].(gdt.DNA), args[1].(string)) })
	reg(core.OpSig{Name: "resembles", Args: []core.Sort{SortDNA, SortDNA, core.SortInt}, Result: core.SortBool,
		Doc:         "true if two fragments share a local alignment scoring at least the threshold",
		Selectivity: 0.02, Cost: 50},
		func(args []any) (any, error) {
			return align.Resembles(args[0].(gdt.DNA).Seq, args[1].(gdt.DNA).Seq, int(args[2].(int64)))
		})
	reg(core.OpSig{Name: "presembles", Args: []core.Sort{SortProtein, SortProtein, core.SortInt}, Result: core.SortBool,
		Doc:         "true if two proteins share a substitution-matrix local alignment scoring at least the threshold",
		Selectivity: 0.02, Cost: 50},
		func(args []any) (any, error) {
			return align.ProtResembles(args[0].(gdt.Protein).Seq, args[1].(gdt.Protein).Seq, int(args[2].(int64)))
		})

	// Structure accessors.
	reg(core.OpSig{Name: "subsequence", Args: []core.Sort{SortDNA, core.SortInt, core.SortInt}, Result: SortDNA,
		Doc: "subsequence [lo,hi) of a fragment"},
		func(args []any) (any, error) {
			d := args[0].(gdt.DNA)
			lo, hi := int(args[1].(int64)), int(args[2].(int64))
			if lo < 0 || hi > d.Seq.Len() || lo > hi {
				return nil, fmt.Errorf("genops: subsequence [%d,%d) out of range [0,%d]", lo, hi, d.Seq.Len())
			}
			return gdt.DNA{ID: fmt.Sprintf("%s[%d:%d]", d.ID, lo, hi), Seq: d.Seq.Slice(lo, hi)}, nil
		})
	reg(core.OpSig{Name: "complement", Args: []core.Sort{SortNucleotide}, Result: SortNucleotide,
		Doc: "Watson-Crick complement of a nucleotide"},
		func(args []any) (any, error) {
			return gdt.Nucleotide{Base: args[0].(gdt.Nucleotide).Base.Complement()}, nil
		})
	reg(core.OpSig{Name: "motiffind", Args: []core.Sort{SortDNA, core.SortString}, Result: core.SortInt,
		Doc: "first index of the pattern, or -1", Cost: 2},
		func(args []any) (any, error) {
			i, err := MotifFind(args[0].(gdt.DNA), args[1].(string))
			return int64(i), err
		})
	reg(core.OpSig{Name: "restrictionsites", Args: []core.Sort{SortDNA, core.SortString}, Result: core.SortInt,
		Doc: "count of non-overlapping recognition-site occurrences", Cost: 2},
		func(args []any) (any, error) {
			n, err := RestrictionSites(args[0].(gdt.DNA), args[1].(string))
			return int64(n), err
		})
	reg(core.OpSig{Name: "orfcount", Args: []core.Sort{SortDNA, core.SortInt}, Result: core.SortInt,
		Doc: "number of ORFs of at least the given length on either strand", Cost: 3},
		func(args []any) (any, error) {
			return int64(len(seq.FindORFs(args[0].(gdt.DNA).Seq, int(args[1].(int64))))), nil
		})

	// GDT projections used by the query layer.
	reg(core.OpSig{Name: "geneseq", Args: []core.Sort{SortGene}, Result: SortDNA,
		Doc: "genomic DNA of a gene"},
		func(args []any) (any, error) {
			g := args[0].(gdt.Gene)
			return gdt.DNA{ID: g.ID, Seq: g.Seq}, nil
		})
	reg(core.OpSig{Name: "symbol", Args: []core.Sort{SortGene}, Result: core.SortString,
		Doc: "gene symbol"},
		func(args []any) (any, error) { return args[0].(gdt.Gene).Symbol, nil })
	reg(core.OpSig{Name: "exoncount", Args: []core.Sort{SortGene}, Result: core.SortInt,
		Doc: "number of exons"},
		func(args []any) (any, error) { return int64(len(args[0].(gdt.Gene).Exons)), nil })
	reg(core.OpSig{Name: "proteinweight", Args: []core.Sort{SortProtein}, Result: core.SortFloat,
		Doc: "approximate molecular weight in daltons"},
		func(args []any) (any, error) { return args[0].(gdt.Protein).Seq.MolecularWeight(), nil })
	reg(core.OpSig{Name: "proteinseq", Args: []core.Sort{SortProtein}, Result: core.SortString,
		Doc: "single-letter residue string"},
		func(args []any) (any, error) { return args[0].(gdt.Protein).Seq.String(), nil })

	// Chromosome- and genome-level operations.
	reg(core.OpSig{Name: "length", Args: []core.Sort{SortChromosome}, Result: core.SortInt,
		Doc: "chromosome length in bases"},
		func(args []any) (any, error) { return int64(args[0].(gdt.Chromosome).Seq.Len()), nil })
	reg(core.OpSig{Name: "locuscount", Args: []core.Sort{SortChromosome}, Result: core.SortInt,
		Doc: "number of gene loci on the chromosome"},
		func(args []any) (any, error) { return int64(len(args[0].(gdt.Chromosome).Loci)), nil })
	reg(core.OpSig{Name: "extractgene", Args: []core.Sort{SortChromosome, core.SortString}, Result: SortGene,
		Doc: "cut the named gene locus out of the chromosome (strand-corrected)", Cost: 2},
		func(args []any) (any, error) {
			c := args[0].(gdt.Chromosome)
			id := args[1].(string)
			for _, l := range c.Loci {
				if l.GeneID == id {
					return ExtractGene(c, l)
				}
			}
			return nil, fmt.Errorf("genops: chromosome %s has no locus %q", c.ID, id)
		})
	reg(core.OpSig{Name: "chromosomecount", Args: []core.Sort{SortGenome}, Result: core.SortInt,
		Doc: "number of chromosomes in the genome"},
		func(args []any) (any, error) { return int64(len(args[0].(gdt.Genome).ChromosomeIDs)), nil })
	reg(core.OpSig{Name: "organism", Args: []core.Sort{SortGenome}, Result: core.SortString,
		Doc: "genome organism name"},
		func(args []any) (any, error) { return args[0].(gdt.Genome).Organism, nil })
}

// SortOfValue maps a GDT value to its algebra sort.
func SortOfValue(v gdt.Value) core.Sort {
	return core.Sort(v.Kind().String())
}
