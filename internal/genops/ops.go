// Package genops implements the genomic operations of the Genomics Algebra
// (paper Section 4.2) over the GDTs of package gdt, and registers them —
// together with the genomic sorts — into a core.Signature/core.Algebra pair
// called the kernel algebra.
//
// The paper's central example is directly expressible here: for a gene g,
// the term translate(splice(transcribe(g))) evaluates to the protein
// determined by g. Splicing carries the paper's Section 4.3 uncertainty:
// its operational semantics is unknown, so Splice returns the canonical
// isoform with a confidence below 1 and retains alternative isoforms.
package genops

import (
	"fmt"

	"genalg/internal/gdt"
	"genalg/internal/seq"
	"genalg/internal/uncertain"
)

// SpliceConfidence is the confidence assigned to the canonical isoform by
// Splice, reflecting that splicing's operational semantics is approximated
// (paper Section 4.3: "we cannot determine its operational semantics in the
// form of an algorithm").
const SpliceConfidence = 0.85

// Transcribe produces the primary transcript of a gene: the RNA copy of the
// full gene sequence (exon layout carried along). This is the algebra's
// transcribe: gene -> primarytranscript.
func Transcribe(g gdt.Gene) (gdt.PrimaryTranscript, error) {
	if err := g.Validate(); err != nil {
		return gdt.PrimaryTranscript{}, fmt.Errorf("genops: transcribe: %w", err)
	}
	exons := make([]gdt.Interval, len(g.Exons))
	copy(exons, g.Exons)
	return gdt.PrimaryTranscript{
		GeneID: g.ID,
		Seq:    g.Seq.ToRNA(),
		Exons:  exons,
	}, nil
}

// spliceExons concatenates the given exon intervals of pt's sequence.
func spliceExons(pt gdt.PrimaryTranscript, exons []gdt.Interval) (seq.NucSeq, error) {
	out := seq.NucSeq{}.ToRNA()
	for i, e := range exons {
		if !e.Valid() || e.End > pt.Seq.Len() {
			return seq.NucSeq{}, fmt.Errorf("genops: splice: exon %d out of bounds: %+v", i, e)
		}
		var err error
		out, err = out.Append(pt.Seq.Slice(e.Start, e.End))
		if err != nil {
			return seq.NucSeq{}, err
		}
	}
	return out, nil
}

// Splice removes introns from a primary transcript, yielding the canonical
// mature mRNA with confidence SpliceConfidence, plus alternative exon-
// skipping isoforms as uncertain alternatives (requirement C9: access to
// all alternatives must be preserved).
//
// Alternative isoform model: for each internal exon i (not first, not
// last), the isoform that skips exon i is generated. The alternatives split
// the residual probability mass evenly.
func Splice(pt gdt.PrimaryTranscript) (uncertain.Val[gdt.MRNA], error) {
	if len(pt.Exons) == 0 {
		return uncertain.Absent[gdt.MRNA](), fmt.Errorf("genops: splice: transcript of gene %s has no exon layout", pt.GeneID)
	}
	canonicalSeq, err := spliceExons(pt, pt.Exons)
	if err != nil {
		return uncertain.Absent[gdt.MRNA](), err
	}
	canonical := gdt.MRNA{GeneID: pt.GeneID, Isoform: 0, Seq: canonicalSeq}
	val := uncertain.New(canonical, SpliceConfidence).WithProvenance("splice:" + pt.GeneID)

	// Exon-skipping alternatives.
	if len(pt.Exons) > 2 {
		nAlts := len(pt.Exons) - 2
		altConf := (1 - SpliceConfidence) / float64(nAlts)
		isoform := 1
		for skip := 1; skip < len(pt.Exons)-1; skip++ {
			kept := make([]gdt.Interval, 0, len(pt.Exons)-1)
			kept = append(kept, pt.Exons[:skip]...)
			kept = append(kept, pt.Exons[skip+1:]...)
			altSeq, err := spliceExons(pt, kept)
			if err != nil {
				return uncertain.Absent[gdt.MRNA](), err
			}
			val = val.WithAlternative(uncertain.Alternative[gdt.MRNA]{
				Value:      gdt.MRNA{GeneID: pt.GeneID, Isoform: isoform, Seq: altSeq},
				Confidence: altConf,
				Provenance: fmt.Sprintf("splice:%s:skip-exon-%d", pt.GeneID, skip),
			})
			isoform++
		}
	}
	return val, nil
}

// SpliceCanonical returns only the canonical isoform, for callers (such as
// the algebra operator, whose signature is splice: primarytranscript ->
// mrna) that need a plain value. The uncertainty-aware API is Splice.
func SpliceCanonical(pt gdt.PrimaryTranscript) (gdt.MRNA, error) {
	v, err := Splice(pt)
	if err != nil {
		return gdt.MRNA{}, err
	}
	return v.MustValue(), nil
}

// Translate scans the mRNA for the first AUG and translates to the first
// stop codon (exclusive), yielding the protein. This is the algebra's
// translate: mrna -> protein.
func Translate(m gdt.MRNA) (gdt.Protein, error) {
	start := findStart(m.Seq)
	if start < 0 {
		return gdt.Protein{}, fmt.Errorf("genops: translate: mRNA of gene %s has no start codon", m.GeneID)
	}
	ps := seq.Translate(m.Seq.Slice(start, m.Seq.Len()), 0, true)
	return gdt.Protein{
		ID:     fmt.Sprintf("%s.p%d", m.GeneID, m.Isoform),
		GeneID: m.GeneID,
		Seq:    ps,
	}, nil
}

func findStart(rna seq.NucSeq) int {
	for i := 0; i+3 <= rna.Len(); i++ {
		if seq.MakeCodon(rna.At(i), rna.At(i+1), rna.At(i+2)).IsStart() {
			return i
		}
	}
	return -1
}

// Decode is the algebra's decode: dna -> protein operation: it finds the
// longest open reading frame on either strand of the fragment and
// translates it. It errors when no ORF of at least minORFLen bases exists.
func Decode(d gdt.DNA) (gdt.Protein, error) {
	const minORFLen = 30 // 10 codons, a conventional floor
	orfs := seq.FindORFs(d.Seq, minORFLen)
	if len(orfs) == 0 {
		return gdt.Protein{}, fmt.Errorf("genops: decode: no ORF of >=%d bases in %s", minORFLen, d.ID)
	}
	best := orfs[0]
	for _, o := range orfs[1:] {
		if o.Len() > best.Len() {
			best = o
		}
	}
	strand := d.Seq
	lo, hi := best.Start, best.End
	if best.Reverse {
		strand = d.Seq.ReverseComplement()
		lo, hi = d.Seq.Len()-best.End, d.Seq.Len()-best.Start
	}
	coding := strand.Slice(lo, hi).ToRNA()
	ps := seq.Translate(coding, 0, true)
	return gdt.Protein{ID: d.ID + ".decoded", GeneID: d.ID, Seq: ps}, nil
}

// CentralDogma composes the paper's example term
// translate(splice(transcribe(g))) with uncertainty propagation: every
// isoform produced by splice is translated, and the result carries the
// isoform confidences through.
func CentralDogma(g gdt.Gene) (uncertain.Val[gdt.Protein], error) {
	pt, err := Transcribe(g)
	if err != nil {
		return uncertain.Absent[gdt.Protein](), err
	}
	mv, err := Splice(pt)
	if err != nil {
		return uncertain.Absent[gdt.Protein](), err
	}
	// Translate primary and every alternative; isoforms whose translation
	// fails (no start codon) are dropped from the alternatives.
	prim, err := Translate(mv.MustValue())
	if err != nil {
		return uncertain.Absent[gdt.Protein](), err
	}
	out := uncertain.New(prim, mv.Confidence()).WithProvenance("centraldogma:" + g.ID)
	for _, alt := range mv.Alternatives() {
		p, err := Translate(alt.Value)
		if err != nil {
			continue
		}
		out = out.WithAlternative(uncertain.Alternative[gdt.Protein]{
			Value: p, Confidence: alt.Confidence, Provenance: alt.Provenance,
		})
	}
	return out, nil
}

// Contains reports whether the DNA fragment contains the given nucleotide
// pattern (the paper's Section 6.3 example predicate).
func Contains(d gdt.DNA, pattern string) (bool, error) {
	pat, err := seq.NewNucSeq(seq.AlphaDNA, pattern)
	if err != nil {
		return false, fmt.Errorf("genops: contains: %w", err)
	}
	return d.Seq.Contains(pat), nil
}

// MotifFind returns the first index of pattern in the fragment, or -1.
func MotifFind(d gdt.DNA, pattern string) (int, error) {
	pat, err := seq.NewNucSeq(seq.AlphaDNA, pattern)
	if err != nil {
		return -1, fmt.Errorf("genops: motiffind: %w", err)
	}
	return d.Seq.IndexOf(pat), nil
}

// RestrictionSites counts non-overlapping occurrences of a recognition
// pattern (e.g. GAATTC for EcoRI) in the fragment.
func RestrictionSites(d gdt.DNA, pattern string) (int, error) {
	pat, err := seq.NewNucSeq(seq.AlphaDNA, pattern)
	if err != nil {
		return 0, fmt.Errorf("genops: restrictionsites: %w", err)
	}
	if pat.Len() == 0 {
		return 0, fmt.Errorf("genops: restrictionsites: empty pattern")
	}
	count := 0
	rest := d.Seq
	offset := 0
	for {
		i := rest.IndexOf(pat)
		if i < 0 {
			return count, nil
		}
		count++
		offset += i + pat.Len()
		if offset >= d.Seq.Len() {
			return count, nil
		}
		rest = d.Seq.Slice(offset, d.Seq.Len())
	}
}

// ExtractGene cuts a gene out of a chromosome at the given locus,
// strand-correcting reverse-strand genes. The returned gene has a single
// exon covering its full span; finer exon structure comes from annotation
// sources.
func ExtractGene(c gdt.Chromosome, locus gdt.GeneLocus) (gdt.Gene, error) {
	if !locus.Span.Valid() || locus.Span.End > c.Seq.Len() {
		return gdt.Gene{}, fmt.Errorf("genops: extractgene: locus %+v out of chromosome %s bounds", locus, c.ID)
	}
	s := c.Seq.Slice(locus.Span.Start, locus.Span.End)
	if locus.Reverse {
		s = s.ReverseComplement()
	}
	return gdt.Gene{
		ID:    locus.GeneID,
		Seq:   s,
		Exons: []gdt.Interval{{Start: 0, End: s.Len()}},
	}, nil
}
