package genops

import (
	"math"
	"strings"
	"testing"

	"genalg/internal/core"
	"genalg/internal/gdt"
	"genalg/internal/seq"
)

// testGene builds a 3-exon gene whose canonical mRNA is
// AUG AAA CCC GGG UUU UAA (start, K, P, G, F, stop -> protein "MKPGF").
// Introns ("GTAAGT...AG"-free toy introns) separate the exons.
func testGene() gdt.Gene {
	// exon1: ATGAAA  intron1: GTCCCTAG  exon2: CCCGGG  intron2: GTTTTTAG  exon3: TTTTAA
	s := "ATGAAA" + "GTCCCTAG" + "CCCGGG" + "GTTTTTAG" + "TTTTAA"
	return gdt.Gene{
		ID: "G1", Symbol: "TST1", Organism: "synthetica",
		Seq: seq.MustNucSeq(seq.AlphaDNA, s),
		Exons: []gdt.Interval{
			{Start: 0, End: 6},
			{Start: 14, End: 20},
			{Start: 28, End: 34},
		},
	}
}

func TestTranscribe(t *testing.T) {
	g := testGene()
	pt, err := Transcribe(g)
	if err != nil {
		t.Fatal(err)
	}
	if pt.GeneID != "G1" {
		t.Errorf("GeneID = %q", pt.GeneID)
	}
	if pt.Seq.Alphabet() != seq.AlphaRNA {
		t.Error("primary transcript is not RNA")
	}
	if pt.Seq.Len() != g.Seq.Len() {
		t.Errorf("transcript length %d != gene length %d", pt.Seq.Len(), g.Seq.Len())
	}
	if !strings.HasPrefix(pt.Seq.String(), "AUGAAA") {
		t.Errorf("transcript = %q", pt.Seq.String())
	}
	if len(pt.Exons) != 3 {
		t.Errorf("exon layout lost: %v", pt.Exons)
	}
}

func TestTranscribeRejectsInvalidGene(t *testing.T) {
	g := testGene()
	g.Exons = []gdt.Interval{{Start: 0, End: 1000}}
	if _, err := Transcribe(g); err == nil {
		t.Error("invalid gene transcribed")
	}
}

func TestSpliceCanonical(t *testing.T) {
	pt, err := Transcribe(testGene())
	if err != nil {
		t.Fatal(err)
	}
	m, err := SpliceCanonical(pt)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Seq.String(); got != "AUGAAACCCGGGUUUUAA" {
		t.Errorf("canonical mRNA = %q", got)
	}
	if m.Isoform != 0 {
		t.Errorf("canonical isoform = %d", m.Isoform)
	}
}

func TestSpliceUncertainty(t *testing.T) {
	pt, _ := Transcribe(testGene())
	v, err := Splice(pt)
	if err != nil {
		t.Fatal(err)
	}
	if v.Confidence() != SpliceConfidence {
		t.Errorf("canonical confidence = %v", v.Confidence())
	}
	alts := v.Alternatives()
	if len(alts) != 1 { // 3 exons -> 1 internal exon to skip
		t.Fatalf("alternatives = %d, want 1", len(alts))
	}
	// The exon-2-skipped isoform: AUGAAA + UUUUAA.
	if got := alts[0].Value.Seq.String(); got != "AUGAAAUUUUAA" {
		t.Errorf("alt isoform = %q", got)
	}
	if math.Abs(alts[0].Confidence-(1-SpliceConfidence)) > 1e-12 {
		t.Errorf("alt confidence = %v", alts[0].Confidence)
	}
	// Confidence mass sums to 1.
	total := v.Confidence()
	for _, a := range alts {
		total += a.Confidence
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("confidence mass = %v", total)
	}
}

func TestSpliceManyExonsAlternativeCount(t *testing.T) {
	// 5 exons -> 3 skippable internal exons.
	s := strings.Repeat("ATGAAACCC", 5)
	g := gdt.Gene{ID: "G5", Seq: seq.MustNucSeq(seq.AlphaDNA, s)}
	for i := 0; i < 5; i++ {
		g.Exons = append(g.Exons, gdt.Interval{Start: i * 9, End: i*9 + 6})
	}
	pt, err := Transcribe(g)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Splice(pt)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(v.Alternatives()); got != 3 {
		t.Errorf("alternatives = %d, want 3", got)
	}
}

func TestSpliceRequiresExons(t *testing.T) {
	pt := gdt.PrimaryTranscript{GeneID: "X", Seq: seq.MustNucSeq(seq.AlphaRNA, "AUG")}
	if _, err := Splice(pt); err == nil {
		t.Error("splice without exon layout succeeded")
	}
	pt.Exons = []gdt.Interval{{Start: 0, End: 99}}
	if _, err := Splice(pt); err == nil {
		t.Error("splice with out-of-bounds exon succeeded")
	}
}

func TestTranslate(t *testing.T) {
	m := gdt.MRNA{GeneID: "G1", Seq: seq.MustNucSeq(seq.AlphaRNA, "AUGAAACCCGGGUUUUAA")}
	p, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Seq.String(); got != "MKPGF" {
		t.Errorf("protein = %q, want MKPGF", got)
	}
	if p.GeneID != "G1" || p.ID != "G1.p0" {
		t.Errorf("protein identity = %+v", p)
	}
}

func TestTranslateFindsInternalStart(t *testing.T) {
	// 5' UTR before the AUG.
	m := gdt.MRNA{GeneID: "G", Seq: seq.MustNucSeq(seq.AlphaRNA, "CCUUAUGAAAUAA")}
	p, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Seq.String(); got != "MK" {
		t.Errorf("protein = %q, want MK", got)
	}
}

func TestTranslateNoStart(t *testing.T) {
	m := gdt.MRNA{GeneID: "G", Seq: seq.MustNucSeq(seq.AlphaRNA, "CCCGGGUUU")}
	if _, err := Translate(m); err == nil {
		t.Error("translate without start codon succeeded")
	}
}

func TestCentralDogma(t *testing.T) {
	v, err := CentralDogma(testGene())
	if err != nil {
		t.Fatal(err)
	}
	p := v.MustValue()
	if got := p.Seq.String(); got != "MKPGF" {
		t.Errorf("canonical protein = %q", got)
	}
	if v.Confidence() != SpliceConfidence {
		t.Errorf("confidence = %v", v.Confidence())
	}
	// The exon-skip isoform AUGAAAUUUUAA translates to MKF.
	alts := v.Alternatives()
	if len(alts) != 1 || alts[0].Value.Seq.String() != "MKF" {
		t.Errorf("alt proteins = %+v", alts)
	}
}

func TestDecodeRejectsShortORF(t *testing.T) {
	// 18-base ORF is below the 30-base conventional floor.
	d := gdt.MustDNA("D1", "CCC"+"ATGAAACCCGGGTTTTGA"+"CC")
	if _, err := Decode(d); err == nil {
		t.Error("decode accepted an ORF shorter than the floor")
	}
}

func TestDecodeLongORF(t *testing.T) {
	// Build an ORF of 12 codons: ATG + 10 AAA + TAA = 36 bases.
	orf := "ATG" + strings.Repeat("AAA", 10) + "TAA"
	d := gdt.MustDNA("D2", "CCCC"+orf+"GGGG")
	p, err := Decode(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Seq.String(); got != "M"+strings.Repeat("K", 10) {
		t.Errorf("decoded protein = %q", got)
	}
}

func TestDecodeReverseStrandORF(t *testing.T) {
	orf := "ATG" + strings.Repeat("GGG", 10) + "TAG"
	fwd := seq.MustNucSeq(seq.AlphaDNA, "CC"+orf+"AA").ReverseComplement()
	d := gdt.DNA{ID: "rev", Seq: fwd}
	p, err := Decode(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Seq.String(); got != "M"+strings.Repeat("G", 10) {
		t.Errorf("decoded reverse protein = %q", got)
	}
}

func TestDecodeNoORF(t *testing.T) {
	if _, err := Decode(gdt.MustDNA("D3", "CCCCCCCC")); err == nil {
		t.Error("decode of ORF-free fragment succeeded")
	}
}

func TestContains(t *testing.T) {
	d := gdt.MustDNA("D", "AAATTGCCATAGGG")
	ok, err := Contains(d, "ATTGCCATA")
	if err != nil || !ok {
		t.Errorf("Contains = %v, %v", ok, err)
	}
	ok, err = Contains(d, "GGGGGG")
	if err != nil || ok {
		t.Errorf("Contains negative = %v, %v", ok, err)
	}
	if _, err := Contains(d, "AXG"); err == nil {
		t.Error("bad pattern accepted")
	}
}

func TestMotifFindAndRestrictionSites(t *testing.T) {
	d := gdt.MustDNA("D", "GAATTCAAGAATTC")
	i, err := MotifFind(d, "GAATTC")
	if err != nil || i != 0 {
		t.Errorf("MotifFind = %d, %v", i, err)
	}
	i, err = MotifFind(d, "TTTT")
	if err != nil || i != -1 {
		t.Errorf("MotifFind missing = %d, %v", i, err)
	}
	n, err := RestrictionSites(d, "GAATTC")
	if err != nil || n != 2 {
		t.Errorf("RestrictionSites = %d, %v", n, err)
	}
	// Overlapping occurrences counted non-overlapping.
	d2 := gdt.MustDNA("D2", "AAAA")
	n, err = RestrictionSites(d2, "AA")
	if err != nil || n != 2 {
		t.Errorf("non-overlap count = %d, %v", n, err)
	}
	if _, err := RestrictionSites(d, ""); err == nil {
		t.Error("empty pattern accepted")
	}
}

func TestExtractGene(t *testing.T) {
	chrom := gdt.Chromosome{
		ID: "C1", Name: "chr1",
		Seq: seq.MustNucSeq(seq.AlphaDNA, "AAAATGCCCTTTT"),
	}
	g, err := ExtractGene(chrom, gdt.GeneLocus{GeneID: "gX", Span: gdt.Interval{Start: 3, End: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Seq.String() != "ATGCCCT" {
		t.Errorf("extracted = %q", g.Seq.String())
	}
	// Reverse strand.
	g, err = ExtractGene(chrom, gdt.GeneLocus{GeneID: "gY", Span: gdt.Interval{Start: 3, End: 10}, Reverse: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.Seq.String() != "AGGGCAT" {
		t.Errorf("reverse extracted = %q", g.Seq.String())
	}
	if _, err := ExtractGene(chrom, gdt.GeneLocus{GeneID: "gZ", Span: gdt.Interval{Start: 5, End: 999}}); err == nil {
		t.Error("out-of-bounds locus accepted")
	}
}

func TestKernelPaperTerm(t *testing.T) {
	k := NewKernel()
	term, err := core.ParseTerm(k.Sig, "translate(splice(transcribe(g)))",
		map[string]core.Sort{"g": SortGene})
	if err != nil {
		t.Fatal(err)
	}
	if term.Sort() != SortProtein {
		t.Errorf("term sort = %v", term.Sort())
	}
	v, err := k.Alg.Eval(term, core.Env{"g": testGene()})
	if err != nil {
		t.Fatal(err)
	}
	p := v.(gdt.Protein)
	if p.Seq.String() != "MKPGF" {
		t.Errorf("evaluated protein = %q", p.Seq.String())
	}
}

func TestKernelContainsTerm(t *testing.T) {
	k := NewKernel()
	term, err := core.ParseTerm(k.Sig, `contains(fragment, "ATTGCCATA")`,
		map[string]core.Sort{"fragment": SortDNA})
	if err != nil {
		t.Fatal(err)
	}
	v, err := k.Alg.Eval(term, core.Env{"fragment": gdt.MustDNA("f", "TTATTGCCATAGG")})
	if err != nil || v != true {
		t.Errorf("contains term = %v, %v", v, err)
	}
}

func TestKernelOverloadedLength(t *testing.T) {
	k := NewKernel()
	cases := []struct {
		env  core.Env
		sort core.Sort
		want int64
	}{
		{core.Env{"x": gdt.MustDNA("d", "ACGT")}, SortDNA, 4},
		{core.Env{"x": gdt.Protein{Seq: seq.MustProtSeq("MKV")}}, SortProtein, 3},
		{core.Env{"x": testGene()}, SortGene, 34},
	}
	for _, c := range cases {
		term, err := core.ParseTerm(k.Sig, "length(x)", map[string]core.Sort{"x": c.sort})
		if err != nil {
			t.Fatal(err)
		}
		v, err := k.Alg.Eval(term, c.env)
		if err != nil || v.(int64) != c.want {
			t.Errorf("length over %v = %v, %v (want %d)", c.sort, v, err, c.want)
		}
	}
}

func TestKernelExtensibility(t *testing.T) {
	k := NewKernel()
	// A user registers a new operation at runtime (C14).
	k.Alg.MustRegister(core.OpSig{Name: "atcontent", Args: []core.Sort{SortDNA}, Result: core.SortFloat},
		func(args []any) (any, error) { return 1 - args[0].(gdt.DNA).Seq.GCContent(), nil })
	term, err := core.ParseTerm(k.Sig, "atcontent(d)", map[string]core.Sort{"d": SortDNA})
	if err != nil {
		t.Fatal(err)
	}
	v, err := k.Alg.Eval(term, core.Env{"d": gdt.MustDNA("d", "ATAT")})
	if err != nil || v.(float64) != 1 {
		t.Errorf("atcontent = %v, %v", v, err)
	}
}

func TestKernelOpsHaveDocs(t *testing.T) {
	k := NewKernel()
	for _, op := range k.Sig.Ops() {
		if op.Doc == "" {
			t.Errorf("operator %s lacks documentation", op)
		}
	}
	if got := len(k.Sig.Ops()); got < 20 {
		t.Errorf("kernel registers %d ops, want >= 20", got)
	}
}

func TestSortOfValue(t *testing.T) {
	if s := SortOfValue(gdt.MustDNA("d", "A")); s != SortDNA {
		t.Errorf("SortOfValue(dna) = %v", s)
	}
	if s := SortOfValue(testGene()); s != SortGene {
		t.Errorf("SortOfValue(gene) = %v", s)
	}
}

func BenchmarkCentralDogmaDirect(b *testing.B) {
	g := testGene()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CentralDogma(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCentralDogmaTerm(b *testing.B) {
	k := NewKernel()
	term := core.MustApply(k.Sig, "translate",
		core.MustApply(k.Sig, "splice",
			core.MustApply(k.Sig, "transcribe", core.Var(SortGene, "g"))))
	env := core.Env{"g": testGene()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := k.Alg.Eval(term, env); err != nil {
			b.Fatal(err)
		}
	}
}

func TestKernelPresembles(t *testing.T) {
	k := NewKernel()
	term, err := core.ParseTerm(k.Sig, "presembles(a, b, 40)",
		map[string]core.Sort{"a": SortProtein, "b": SortProtein})
	if err != nil {
		t.Fatal(err)
	}
	p1 := gdt.Protein{ID: "p1", Seq: seq.MustProtSeq("MKVLWAALLVTFLAG")}
	p2 := gdt.Protein{ID: "p2", Seq: seq.MustProtSeq("MKVLWAALLVTFLAG")}
	p3 := gdt.Protein{ID: "p3", Seq: seq.MustProtSeq("GGGGGGGG")}
	v, err := k.Alg.Eval(term, core.Env{"a": p1, "b": p2})
	if err != nil || v != true {
		t.Errorf("identical presembles = %v, %v", v, err)
	}
	v, err = k.Alg.Eval(term, core.Env{"a": p1, "b": p3})
	if err != nil || v != false {
		t.Errorf("dissimilar presembles = %v, %v", v, err)
	}
}

// TestKernelAllOpsThroughTerms drives every registered operation through a
// parsed term, covering the registered closures end-to-end.
func TestKernelAllOpsThroughTerms(t *testing.T) {
	k := NewKernel()
	g := testGene()
	d := gdt.MustDNA("d", "ATGAAACCCGGGTTTACGTACGT")
	r := gdt.RNA{ID: "r", Seq: seq.MustNucSeq(seq.AlphaRNA, "AUGAAACCC")}
	m := gdt.MRNA{GeneID: "g", Seq: seq.MustNucSeq(seq.AlphaRNA, "AUGAAAUAA")}
	p := gdt.Protein{ID: "p", Seq: seq.MustProtSeq("MKV")}
	n := gdt.Nucleotide{Base: seq.A}
	chrom := gdt.Chromosome{
		ID: "c", Name: "chr1",
		Seq:  seq.MustNucSeq(seq.AlphaDNA, "TTTTATGAAATTTT"),
		Loci: []gdt.GeneLocus{{GeneID: "gX", Span: gdt.Interval{Start: 4, End: 10}}},
	}
	genome := gdt.Genome{ID: "gn", Organism: "org", ChromosomeIDs: []string{"c"}}
	vars := map[string]core.Sort{
		"g": SortGene, "d": SortDNA, "r": SortRNA, "m": SortMRNA,
		"p": SortProtein, "n": SortNucleotide, "c": SortChromosome, "gn": SortGenome,
	}
	env := core.Env{"g": g, "d": d, "r": r, "m": m, "p": p, "n": n, "c": chrom, "gn": genome}
	cases := []struct {
		term string
		want any // nil = only assert success
	}{
		{`reversecomplement(d)`, nil},
		{`gccontent(d)`, nil},
		{`length(d)`, int64(23)},
		{`length(r)`, int64(9)},
		{`length(m)`, int64(9)},
		{`length(p)`, int64(3)},
		{`length(g)`, int64(34)},
		{`length(c)`, int64(14)},
		{`contains(d, "ATGAAA")`, true},
		{`resembles(d, d, 10)`, true},
		{`presembles(p, p, 10)`, true},
		{`subsequence(d, 0, 3)`, nil},
		{`complement(n)`, gdt.Nucleotide{Base: seq.T}},
		{`motiffind(d, "CCC")`, int64(6)},
		{`restrictionsites(d, "ACGT")`, int64(2)},
		{`orfcount(d, 6)`, nil},
		{`geneseq(g)`, nil},
		{`symbol(g)`, "TST1"},
		{`exoncount(g)`, int64(3)},
		{`proteinweight(p)`, nil},
		{`proteinseq(p)`, "MKV"},
		{`locuscount(c)`, int64(1)},
		{`extractgene(c, "gX")`, nil},
		{`chromosomecount(gn)`, int64(1)},
		{`organism(gn)`, "org"},
		{`translate(m)`, nil},
		{`decode(reversecomplement(d))`, nil},
	}
	for _, c := range cases {
		term, err := core.ParseTerm(k.Sig, c.term, vars)
		if err != nil {
			t.Errorf("ParseTerm(%s): %v", c.term, err)
			continue
		}
		v, err := k.Alg.Eval(term, env)
		if err != nil {
			// decode may legitimately fail on short fragments; the term
			// exercise is what matters for coverage of the closure.
			if strings.Contains(c.term, "decode") {
				continue
			}
			t.Errorf("Eval(%s): %v", c.term, err)
			continue
		}
		if c.want != nil {
			if gv, ok := c.want.(gdt.Value); ok {
				if !gdt.Equal(gv, v.(gdt.Value)) {
					t.Errorf("Eval(%s) = %v, want %v", c.term, v, c.want)
				}
			} else if v != c.want {
				t.Errorf("Eval(%s) = %v, want %v", c.term, v, c.want)
			}
		}
	}
}

func TestKernelOpErrorPaths(t *testing.T) {
	k := NewKernel()
	d := gdt.MustDNA("d", "ACGT")
	chrom := gdt.Chromosome{ID: "c", Seq: seq.MustNucSeq(seq.AlphaDNA, "ACGT")}
	cases := []struct {
		term string
		env  core.Env
		vars map[string]core.Sort
	}{
		{`subsequence(d, 2, 99)`, core.Env{"d": d}, map[string]core.Sort{"d": SortDNA}},
		{`contains(d, "NNN")`, core.Env{"d": d}, map[string]core.Sort{"d": SortDNA}},
		{`extractgene(c, "nosuch")`, core.Env{"c": chrom}, map[string]core.Sort{"c": SortChromosome}},
	}
	for _, c := range cases {
		term, err := core.ParseTerm(k.Sig, c.term, c.vars)
		if err != nil {
			t.Fatalf("ParseTerm(%s): %v", c.term, err)
		}
		if _, err := k.Alg.Eval(term, c.env); err == nil {
			t.Errorf("Eval(%s) succeeded, want error", c.term)
		}
	}
}
