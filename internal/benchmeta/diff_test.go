package benchmeta

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func snap(version int, scenarios ...ScenarioStat) Snapshot {
	return Snapshot{
		Stamp:      Stamp{SchemaVersion: version},
		Experiment: "e18",
		Scenarios:  scenarios,
	}
}

func stat(name string, p95, p99 float64, requests, errors, timeouts int64) ScenarioStat {
	return ScenarioStat{Name: name, P95ms: p95, P99ms: p99, Requests: requests, Errors: errors, Timeouts: timeouts}
}

func TestDiffSchemaVersionMismatch(t *testing.T) {
	_, err := Diff(snap(1), snap(2), DefaultDiffOptions())
	if err == nil {
		t.Fatal("want an error comparing snapshots with different schema versions")
	}
}

func TestDiffExperimentMismatch(t *testing.T) {
	a, b := snap(2), snap(2)
	b.Experiment = "e12"
	if _, err := Diff(a, b, DefaultDiffOptions()); err == nil {
		t.Fatal("want an error comparing snapshots of different experiments")
	}
}

func TestDiffCleanWithinThresholds(t *testing.T) {
	oldS := snap(2, stat("point_lookup", 100, 200, 1000, 2, 0))
	// 20% worse p95, p99 improved, same error ratio: all within bounds.
	newS := snap(2, stat("point_lookup", 120, 180, 1000, 2, 0))
	regs, err := Diff(oldS, newS, DefaultDiffOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("want no regressions, got %v", regs)
	}
}

func TestDiffFlagsTailLatency(t *testing.T) {
	oldS := snap(2, stat("scan", 100, 200, 1000, 0, 0))
	newS := snap(2, stat("scan", 140, 300, 1000, 0, 0))
	regs, err := Diff(oldS, newS, DefaultDiffOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("want p95 and p99 regressions, got %v", regs)
	}
	if regs[0].Metric != "p95_ms" || regs[1].Metric != "p99_ms" {
		t.Fatalf("want p95_ms then p99_ms, got %v", regs)
	}
}

// TestDiffSlackAbsorbsNoise pins that tiny absolute moves on a
// single-digit-millisecond baseline do not fail the ratio gate.
func TestDiffSlackAbsorbsNoise(t *testing.T) {
	oldS := snap(2, stat("point_lookup", 1.0, 2.0, 1000, 0, 0))
	newS := snap(2, stat("point_lookup", 1.9, 2.9, 1000, 0, 0))
	regs, err := Diff(oldS, newS, DefaultDiffOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("want slack to absorb sub-millisecond noise, got %v", regs)
	}
}

func TestDiffFlagsErrorRatio(t *testing.T) {
	oldS := snap(2, stat("dml_burst", 100, 200, 1000, 0, 0))
	// 2% failures (errors + timeouts both count) against a clean baseline.
	newS := snap(2, stat("dml_burst", 100, 200, 1000, 12, 8))
	regs, err := Diff(oldS, newS, DefaultDiffOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "error_ratio" {
		t.Fatalf("want one error_ratio regression, got %v", regs)
	}
}

func TestDiffFlagsMissingScenario(t *testing.T) {
	oldS := snap(2, stat("kmer_search", 100, 200, 1000, 0, 0))
	newS := snap(2)
	regs, err := Diff(oldS, newS, DefaultDiffOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "missing" {
		t.Fatalf("want the vanished scenario flagged, got %v", regs)
	}
}

func TestDiffIgnoresNewScenarios(t *testing.T) {
	oldS := snap(2, stat("scan", 100, 200, 1000, 0, 0))
	newS := snap(2, stat("scan", 100, 200, 1000, 0, 0), stat("etl_ingest", 900, 1800, 100, 50, 0))
	regs, err := Diff(oldS, newS, DefaultDiffOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("coverage growth is not a regression, got %v", regs)
	}
}

// TestReadSnapshot round-trips a snapshot through the on-disk JSON shape,
// including fields the differ does not decode.
func TestReadSnapshot(t *testing.T) {
	doc := map[string]any{
		"schema_version": 2,
		"commit":         "abc1234",
		"experiment":     "e18",
		"config":         map[string]any{"seed": 1},
		"scenarios": []map[string]any{{
			"name": "point_lookup", "requests": 10, "errors": 1, "timeouts": 2,
			"p50_ms": 1.0, "p95_ms": 2.5, "p99_ms": 4.0, "slo_ok": true,
		}},
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_e18.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != 2 || got.Experiment != "e18" || len(got.Scenarios) != 1 {
		t.Fatalf("bad decode: %+v", got)
	}
	s := got.Scenarios[0]
	if s.Name != "point_lookup" || s.P95ms != 2.5 || s.Errors != 1 || s.Timeouts != 2 {
		t.Fatalf("bad scenario decode: %+v", s)
	}
	if want := 0.3; s.ErrorRatio() != want {
		t.Fatalf("ErrorRatio = %v, want %v", s.ErrorRatio(), want)
	}
}
