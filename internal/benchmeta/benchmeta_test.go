package benchmeta

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNewStampFields(t *testing.T) {
	before := time.Now().Unix()
	s := NewStamp()
	if s.SchemaVersion != SchemaVersion {
		t.Fatalf("SchemaVersion = %d, want %d", s.SchemaVersion, SchemaVersion)
	}
	if s.Commit == "" {
		t.Fatal("Commit is empty; want a hash or \"unknown\"")
	}
	if s.UnixTime < before {
		t.Fatalf("UnixTime = %d, before the call at %d", s.UnixTime, before)
	}
	if s.GoOS == "" || s.GoArch == "" || s.MaxProcs < 1 {
		t.Fatalf("host fields unset: %+v", s)
	}
}

func TestStampLeadsEmbeddedJSON(t *testing.T) {
	// Emitters embed Stamp first so schema_version is the snapshot's
	// leading field — the property trajectory tooling keys on.
	doc := struct {
		Stamp
		Experiment string `json:"experiment"`
	}{NewStamp(), "e0"}
	buf, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(buf), `{"schema_version":`) {
		t.Fatalf("snapshot JSON does not lead with schema_version: %s", buf)
	}
}

func TestCommitCached(t *testing.T) {
	if a, b := Commit(), Commit(); a != b {
		t.Fatalf("Commit not stable: %q then %q", a, b)
	}
}
