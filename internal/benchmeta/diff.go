package benchmeta

import (
	"encoding/json"
	"fmt"
	"os"
)

// Snapshot is the generic shape of a BENCH_*.json file as far as the
// trajectory differ cares: the shared Stamp header plus per-scenario
// latency and error statistics. Emitters write richer documents (config,
// SLO verdicts, mean latency); everything the differ does not compare is
// simply not decoded.
type Snapshot struct {
	Stamp
	Experiment string         `json:"experiment"`
	Scenarios  []ScenarioStat `json:"scenarios"`
}

// ScenarioStat is one scenario's measured outcome in a snapshot.
type ScenarioStat struct {
	Name     string  `json:"name"`
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	Timeouts int64   `json:"timeouts"`
	P95ms    float64 `json:"p95_ms"`
	P99ms    float64 `json:"p99_ms"`
}

// ErrorRatio is the scenario's failed fraction: errors and timeouts both
// count, because a client cannot tell a refused statement from a lost one.
func (s ScenarioStat) ErrorRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Errors+s.Timeouts) / float64(s.Requests)
}

// ReadSnapshot loads and decodes one BENCH_*.json file.
func ReadSnapshot(path string) (Snapshot, error) {
	var snap Snapshot
	raw, err := os.ReadFile(path)
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		return snap, fmt.Errorf("benchmeta: decoding %s: %w", path, err)
	}
	return snap, nil
}

// DiffOptions bounds how much worse the new snapshot may be before a
// metric counts as a regression.
type DiffOptions struct {
	// MaxP95Growth and MaxP99Growth are multiplicative ceilings on tail
	// latency: new may be at most old*factor. 1.25 allows 25% growth.
	MaxP95Growth float64
	MaxP99Growth float64
	// SlackMs exempts absolute moves smaller than this many milliseconds,
	// so single-digit-millisecond baselines are not failed on scheduler
	// noise that a ratio threshold would amplify.
	SlackMs float64
	// MaxErrorDelta is the allowed absolute increase in the error ratio
	// (errors+timeouts over requests).
	MaxErrorDelta float64
}

// DefaultDiffOptions matches the CI gate: 25% tail-latency growth with a
// millisecond of absolute slack, and half a percent more failures.
func DefaultDiffOptions() DiffOptions {
	return DiffOptions{MaxP95Growth: 1.25, MaxP99Growth: 1.25, SlackMs: 1.0, MaxErrorDelta: 0.005}
}

// Regression is one metric of one scenario that got worse than the
// options allow. Old and New are the compared values; Limit is the
// largest New that would have passed.
type Regression struct {
	Scenario string  `json:"scenario"`
	Metric   string  `json:"metric"`
	Old      float64 `json:"old"`
	New      float64 `json:"new"`
	Limit    float64 `json:"limit"`
}

func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: scenario missing from the new snapshot", r.Scenario)
	}
	return fmt.Sprintf("%s: %s %.3g -> %.3g (limit %.3g)", r.Scenario, r.Metric, r.Old, r.New, r.Limit)
}

// Diff compares two snapshots scenario by scenario and returns every
// regression. Snapshots with different schema versions are not
// comparable — fields may have changed meaning — so Diff refuses them
// with an error rather than producing a silently wrong verdict.
// Scenarios present only in the new snapshot are ignored (coverage
// growth is not a regression); scenarios that disappeared are reported,
// because a trajectory with a vanished workload proves nothing.
func Diff(oldSnap, newSnap Snapshot, opt DiffOptions) ([]Regression, error) {
	if oldSnap.SchemaVersion != newSnap.SchemaVersion {
		return nil, fmt.Errorf("benchmeta: snapshots are not comparable: schema version %d vs %d",
			oldSnap.SchemaVersion, newSnap.SchemaVersion)
	}
	if oldSnap.Experiment != newSnap.Experiment {
		return nil, fmt.Errorf("benchmeta: snapshots measure different experiments: %q vs %q",
			oldSnap.Experiment, newSnap.Experiment)
	}
	newByName := make(map[string]ScenarioStat, len(newSnap.Scenarios))
	for _, s := range newSnap.Scenarios {
		newByName[s.Name] = s
	}
	var regs []Regression
	for _, oldS := range oldSnap.Scenarios {
		newS, ok := newByName[oldS.Name]
		if !ok {
			regs = append(regs, Regression{Scenario: oldS.Name, Metric: "missing"})
			continue
		}
		regs = append(regs, latencyRegression(oldS.Name, "p95_ms", oldS.P95ms, newS.P95ms, opt.MaxP95Growth, opt.SlackMs)...)
		regs = append(regs, latencyRegression(oldS.Name, "p99_ms", oldS.P99ms, newS.P99ms, opt.MaxP99Growth, opt.SlackMs)...)
		oldRatio, newRatio := oldS.ErrorRatio(), newS.ErrorRatio()
		if limit := oldRatio + opt.MaxErrorDelta; newRatio > limit {
			regs = append(regs, Regression{
				Scenario: oldS.Name, Metric: "error_ratio", Old: oldRatio, New: newRatio, Limit: limit,
			})
		}
	}
	return regs, nil
}

func latencyRegression(scenario, metric string, oldMs, newMs, growth, slackMs float64) []Regression {
	if growth <= 0 {
		return nil
	}
	limit := oldMs*growth + slackMs
	if newMs <= limit {
		return nil
	}
	return []Regression{{Scenario: scenario, Metric: metric, Old: oldMs, New: newMs, Limit: limit}}
}
