// Package benchmeta stamps the repository's machine-readable benchmark
// snapshots (BENCH_*.json) with the header every emitter shares: a schema
// version, the commit the run measured, the run's wall-clock time, and
// the host shape. Two snapshots are comparable exactly when their schema
// versions match, so the perf trajectory across PRs can be diffed by
// machine instead of eyeballed.
package benchmeta

import (
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"time"
)

// SchemaVersion is the current BENCH_*.json header layout. Bump it when a
// field changes meaning; trajectory tooling must never compare snapshots
// across versions silently.
//
// Version history:
//
//	1 — implicit (PR 6): experiment/quick/goos/goarch/gomaxprocs/results,
//	    no version field.
//	2 — adds schema_version, commit, unix_time.
const SchemaVersion = 2

// Stamp is the shared snapshot header. Embed it first so the version and
// provenance fields lead the emitted JSON.
type Stamp struct {
	SchemaVersion int    `json:"schema_version"`
	Commit        string `json:"commit"`
	UnixTime      int64  `json:"unix_time"`
	GoOS          string `json:"goos"`
	GoArch        string `json:"goarch"`
	MaxProcs      int    `json:"gomaxprocs"`
}

// NewStamp fills a Stamp for a run finishing now.
func NewStamp() Stamp {
	return Stamp{
		SchemaVersion: SchemaVersion,
		Commit:        Commit(),
		UnixTime:      time.Now().Unix(),
		GoOS:          runtime.GOOS,
		GoArch:        runtime.GOARCH,
		MaxProcs:      runtime.GOMAXPROCS(0),
	}
}

var (
	commitOnce sync.Once
	commitVal  string
)

// Commit returns the short hash of the working tree's HEAD, or "unknown"
// outside a git checkout (or without git on PATH). The value is cached:
// one exec per process.
func Commit() string {
	commitOnce.Do(func() {
		out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
		commitVal = strings.TrimSpace(string(out))
		if err != nil || commitVal == "" {
			commitVal = "unknown"
		}
	})
	return commitVal
}
