package warehouse

import (
	"context"
	"errors"
	"fmt"

	"genalg/internal/db"
	"genalg/internal/etl"
	"genalg/internal/gdt"
	"genalg/internal/obs"
	"genalg/internal/sources"
	"genalg/internal/storage"
	"genalg/internal/trace"
)

// SetManualRefresh switches between the paper's refresh modes (Section
// 5.2): automatic maintenance applies deltas as they arrive; manual refresh
// queues them until the biologist calls Refresh ("allows the biologist to
// defer or advance updates depending on the situation").
func (w *Warehouse) SetManualRefresh(manual bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.manualRefresh = manual
}

// PendingDeltas reports the number of queued deltas under manual refresh.
func (w *Warehouse) PendingDeltas() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.pending)
}

// ApplyDeltas performs incremental, self-maintainable view maintenance:
// each delta is applied using only the delta itself and current warehouse
// contents — no source re-reads. Under manual refresh the deltas queue
// instead. Malformed after-images are quarantined, not fatal; see
// ApplyDeltasReport for the counts.
func (w *Warehouse) ApplyDeltas(deltas []etl.Delta) error {
	_, err := w.ApplyDeltasReport(deltas)
	return err
}

// ApplyDeltasReport is ApplyDeltas with degradation accounting: it returns
// how many deltas landed and how many were quarantined as malformed
// (wrap-rejected after-images preserved with reason and raw payload). The
// error is reserved for storage-side failures, which still abort the batch.
func (w *Warehouse) ApplyDeltasReport(deltas []etl.Delta) (etl.SinkReport, error) {
	return w.ApplyDeltasReportCtx(context.Background(), deltas)
}

// ApplyDeltasReportCtx is ApplyDeltasReport under the caller's context: the
// batch runs inside a "warehouse.apply_deltas" trace span (with quarantine
// events) when the context carries a tracer — which lets a traced ETL round
// show the maintenance work nested under its sink stage.
func (w *Warehouse) ApplyDeltasReportCtx(ctx context.Context, deltas []etl.Delta) (etl.SinkReport, error) {
	w.mu.Lock()
	manual := w.manualRefresh
	if manual {
		w.pending = append(w.pending, deltas...)
	}
	w.mu.Unlock()
	if manual {
		if sp := trace.FromContext(ctx); sp != nil {
			sp.Eventf("manual refresh: %d delta(s) queued", len(deltas))
		}
		return etl.SinkReport{}, nil
	}
	ctx, sp := trace.Start(ctx, "warehouse.apply_deltas")
	sp.SetAttr("deltas", len(deltas))
	rep, err := w.applyNow(ctx, deltas)
	if err != nil {
		sp.EndSpan(err)
		return rep, err
	}
	sp.SetAttr("applied", rep.RecordsOK)
	sp.SetAttr("quarantined", rep.Quarantined)
	sp.EndOK()
	return rep, nil
}

// Refresh applies all queued deltas (manual mode's "advance updates").
func (w *Warehouse) Refresh() (int, error) {
	return w.RefreshCtx(context.Background())
}

// RefreshCtx is Refresh under the caller's context: quarantine events
// from the apply land on the caller's trace span instead of vanishing
// onto a detached background context.
func (w *Warehouse) RefreshCtx(ctx context.Context) (int, error) {
	w.mu.Lock()
	queued := w.pending
	w.pending = nil
	w.mu.Unlock()
	if _, err := w.applyNow(ctx, queued); err != nil {
		return 0, err
	}
	return len(queued), nil
}

func (w *Warehouse) applyNow(ctx context.Context, deltas []etl.Delta) (etl.SinkReport, error) {
	sp := trace.FromContext(ctx)
	var rep etl.SinkReport
	defer func(rep *etl.SinkReport) {
		obs.Default.Counter("warehouse.maintenance.applied").Add(int64(rep.RecordsOK))
		obs.Default.Counter("warehouse.maintenance.quarantined").Add(int64(rep.Quarantined))
	}(&rep)
	for _, d := range deltas {
		err := w.applyDelta(d)
		if err == nil {
			rep.RecordsOK++
			continue
		}
		var bad *badRecordError
		if errors.As(err, &bad) {
			// A malformed record is the source's fault, not ours: preserve
			// it for curators and keep the round going.
			sp.Eventf("quarantined %s from %s: %v", d.ID, d.Source, bad.err)
			q := QuarantinedRecord{
				ID: d.ID, Source: d.Source, Stage: "maintenance",
				Reason: bad.err.Error(), Tick: d.Tick,
			}
			if d.After != nil {
				q.Payload = sources.Render(formatForPayload, []sources.Record{*d.After})
			}
			if qerr := w.quarantine(q); qerr != nil {
				return rep, qerr
			}
			rep.Quarantined++
			continue
		}
		return rep, fmt.Errorf("warehouse: applying %v: %w", d, err)
	}
	return rep, nil
}

// badRecordError marks a delta rejected because its payload is malformed
// (as opposed to a warehouse-side storage failure).
type badRecordError struct{ err error }

func (e *badRecordError) Error() string { return e.err.Error() }
func (e *badRecordError) Unwrap() error { return e.err }

// formatForPayload renders quarantined after-images; FASTA is the most
// readable single-record evidence format.
const formatForPayload = sources.FormatFASTA

// applyDelta reconciles one source delta against the warehouse. The
// maintenance is self-maintainable in the paper's sense: the existing
// warehouse row plus the delta suffice.
//
// Semantics per kind:
//   - insert: wrap and insert (merging if the entity already exists from
//     another source).
//   - update: re-wrap the after-image; if the warehouse row's primary came
//     from this source (or the new observation has higher quality) replace
//     it, else record it as an alternative.
//   - delete: remove the rows whose *only* source was this one; for merged
//     rows the other sources' data stays (the source string is rewritten).
func (w *Warehouse) applyDelta(d etl.Delta) error {
	switch d.Kind {
	case sources.MutInsert, sources.MutUpdate:
		if d.After == nil {
			return fmt.Errorf("delta has no after-image")
		}
		entry, err := w.wrapper.Wrap(*d.After, d.Source)
		if err != nil {
			return &badRecordError{err: err}
		}
		return w.upsertEntry(entry)
	case sources.MutDelete:
		return w.removeSourceObservation(d.ID, d.Source)
	}
	return fmt.Errorf("unknown delta kind %v", d.Kind)
}

// upsertEntry merges a new observation into the public space.
func (w *Warehouse) upsertEntry(e etl.Entry) error {
	main, altsTable, _, err := tableFor(e.Value)
	if err != nil {
		return err
	}
	tbl, _ := w.DB.Table(main)
	rids, err := tbl.IndexLookup("id", e.ID)
	if err != nil {
		return err
	}
	if len(rids) == 0 {
		// Fresh entity: also check the *other* table pair in case the
		// entity changed kind (a fragment gaining exon structure becomes a
		// gene); drop stale rows there.
		if err := w.deleteEntity(e.ID); err != nil {
			return err
		}
		merged, _ := etl.Integrate([]etl.Entry{e})
		return w.loadIntegrated(merged[0])
	}
	// Merge with the existing row: rebuild the observation set from the
	// stored primary + alternatives + the new observation, then re-integrate.
	row, err := tbl.Get(rids[0])
	if err != nil {
		return err
	}
	existing := rowToEntry(row, e.TermID)
	// Skip self-merge: if the update came from a source already recorded as
	// primary, the new observation replaces it.
	obs := []etl.Entry{e}
	if existing.Source != e.Source {
		obs = append(obs, existing)
	}
	at, _ := w.DB.Table(altsTable)
	altRIDs, err := at.IndexLookup("id", e.ID)
	if err != nil {
		return err
	}
	for _, arid := range altRIDs {
		arow, err := at.Get(arid)
		if err != nil {
			return err
		}
		prov, _ := arow[1].(string)
		if prov == e.Source {
			continue // superseded by the new observation
		}
		obs = append(obs, etl.Entry{
			ID: e.ID, TermID: e.TermID, Source: prov,
			Quality:  arow[2].(float64),
			Value:    arow[3].(gdt.Value),
			Organism: existing.Organism, Description: existing.Description,
			Version: existing.Version,
		})
	}
	if err := w.deleteEntity(e.ID); err != nil {
		return err
	}
	merged, _ := etl.Integrate(obs)
	return w.loadIntegrated(merged[0])
}

// rowToEntry reconstructs an Entry from a primary public-space row.
func rowToEntry(row db.Row, termID string) etl.Entry {
	return etl.Entry{
		ID:          row[0].(string),
		TermID:      termID,
		Organism:    row[1].(string),
		Description: row[2].(string),
		Source:      row[3].(string),
		Version:     int(row[4].(int64)),
		Quality:     row[5].(float64),
		Value:       row[8].(gdt.Value),
	}
}

// removeSourceObservation handles a source-side delete: observations from
// that source disappear; entities with no remaining observations are
// removed entirely.
func (w *Warehouse) removeSourceObservation(id, source string) error {
	for _, pair := range [][3]string{
		{TableFragments, TableFragmentAlts, "fragment"},
		{TableGenes, TableGeneAlts, "gene"},
	} {
		tbl, _ := w.DB.Table(pair[0])
		rids, err := tbl.IndexLookup("id", id)
		if err != nil {
			return err
		}
		if len(rids) == 0 {
			continue
		}
		row, err := tbl.Get(rids[0])
		if err != nil {
			return err
		}
		at, _ := w.DB.Table(pair[1])
		altRIDs, err := at.IndexLookup("id", id)
		if err != nil {
			return err
		}
		// Collect surviving observations (primary + alts not from source).
		var obs []etl.Entry
		primarySources := splitSources(row[3].(string))
		surviving := removeString(primarySources, source)
		if len(surviving) > 0 {
			e := rowToEntry(row, "")
			e.Source = surviving[0]
			obs = append(obs, e)
		}
		for _, arid := range altRIDs {
			arow, err := at.Get(arid)
			if err != nil {
				return err
			}
			prov, _ := arow[1].(string)
			if prov == source {
				continue
			}
			obs = append(obs, etl.Entry{
				ID: id, Source: prov, Quality: arow[2].(float64),
				Value: arow[3].(gdt.Value), Organism: row[1].(string),
				Description: row[2].(string), Version: int(row[4].(int64)),
			})
		}
		if err := w.deleteEntity(id); err != nil {
			return err
		}
		if len(obs) == 0 {
			return nil
		}
		merged, _ := etl.Integrate(obs)
		return w.loadIntegrated(merged[0])
	}
	return nil
}

func splitSources(s string) []string {
	var out []string
	cur := ""
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '+' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		cur += string(s[i])
	}
	return out
}

func removeString(ss []string, drop string) []string {
	var out []string
	for _, s := range ss {
		if s != drop {
			out = append(out, s)
		}
	}
	return out
}

// FullReload is the paper's baseline maintenance strategy ("one can always
// update the warehouse by reloading the entire contents"): it wipes the
// public space and re-extracts everything from the sources. E3 measures it
// against ApplyDeltas.
func (w *Warehouse) FullReload(repos []*sources.Repo) error {
	for _, pair := range []string{TableFragments, TableGenes, TableFragmentAlts, TableGeneAlts} {
		tbl, _ := w.DB.Table(pair)
		var rids []storage.RID
		err := tbl.Scan(func(rid storage.RID, _ db.Row) bool {
			rids = append(rids, rid)
			return true
		})
		if err != nil {
			return err
		}
		muts := make([]db.Mutation, 0, len(rids))
		for _, rid := range rids {
			muts = append(muts, db.Mutation{Kind: db.MutDelete, RID: rid})
		}
		if err := w.DB.ApplyDML(pair, muts); err != nil {
			return err
		}
	}
	_, err := w.InitialLoad(repos)
	return err
}
