package warehouse

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"genalg/internal/adapter"
	"genalg/internal/db"
	"genalg/internal/etl"
	"genalg/internal/genops"
	"genalg/internal/sqlang"
)

// File layout of a persisted warehouse directory:
//
//	pages.db        the page file (heap contents)
//	catalog.json    the engine manifest (schemas, heaps, indexes)
//	warehouse.json  warehouse metadata (user-table ownership, sharing)

type warehouseMeta struct {
	Owners map[string]string `json:"owners"`
	Shared map[string]bool   `json:"shared"`
}

func pagesPath(dir string) string   { return filepath.Join(dir, "pages.db") }
func catalogPath(dir string) string { return filepath.Join(dir, "catalog.json") }
func metaPath(dir string) string    { return filepath.Join(dir, "warehouse.json") }

// OpenFile creates a new file-backed warehouse in dir (which must exist and
// be empty of warehouse files) with the integrated schema installed.
func OpenFile(dir string, poolPages int, wrapper *etl.Wrapper) (*Warehouse, error) {
	if _, err := os.Stat(catalogPath(dir)); err == nil {
		return nil, fmt.Errorf("warehouse: %s already holds a warehouse (use OpenExisting)", dir)
	}
	d, err := db.Open(pagesPath(dir), poolPages)
	if err != nil {
		return nil, err
	}
	k := genops.NewKernel()
	if err := adapter.Install(d, k); err != nil {
		return nil, err
	}
	w := &Warehouse{
		DB: d, Engine: sqlang.NewEngine(d), Kernel: k,
		owners: map[string]string{}, shared: map[string]bool{},
		wrapper: wrapper,
	}
	if err := w.createIntegratedSchema(); err != nil {
		return nil, err
	}
	return w, nil
}

// Save persists the warehouse state into its directory.
func (w *Warehouse) Save(dir string) error {
	if err := w.DB.Save(catalogPath(dir)); err != nil {
		return err
	}
	w.mu.Lock()
	meta := warehouseMeta{Owners: map[string]string{}, Shared: map[string]bool{}}
	for k, v := range w.owners {
		meta.Owners[k] = v
	}
	for k, v := range w.shared {
		meta.Shared[k] = v
	}
	w.mu.Unlock()
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	tmp := metaPath(dir) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, metaPath(dir))
}

// OpenExisting reopens a warehouse persisted with Save.
func OpenExisting(dir string, poolPages int, wrapper *etl.Wrapper) (*Warehouse, error) {
	d, err := db.Open(pagesPath(dir), poolPages)
	if err != nil {
		return nil, err
	}
	k := genops.NewKernel()
	if err := adapter.Install(d, k); err != nil {
		return nil, err
	}
	if err := d.Restore(catalogPath(dir)); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(metaPath(dir))
	if err != nil {
		return nil, fmt.Errorf("warehouse: reading metadata: %w", err)
	}
	var meta warehouseMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, fmt.Errorf("warehouse: decoding metadata: %w", err)
	}
	w := &Warehouse{
		DB: d, Engine: sqlang.NewEngine(d), Kernel: k,
		owners: meta.Owners, shared: meta.Shared,
		wrapper: wrapper,
	}
	if w.owners == nil {
		w.owners = map[string]string{}
	}
	if w.shared == nil {
		w.shared = map[string]bool{}
	}
	return w, nil
}

// Close flushes and closes the underlying engine.
func (w *Warehouse) Close() error { return w.DB.Close() }
