package warehouse

import (
	"fmt"
	"sort"

	"genalg/internal/db"
	"genalg/internal/etl"
	"genalg/internal/sources"
)

// TableCrossRefs records accession cross-references produced by
// content-based entity matching: original accessions folded into canonical
// entities (paper Section 5.2's semantic-heterogeneity resolution).
const TableCrossRefs = "crossrefs"

// EnsureCrossRefTable creates the crossrefs table when absent.
func (w *Warehouse) EnsureCrossRefTable() error {
	if _, ok := w.DB.Table(TableCrossRefs); ok {
		return nil
	}
	_, err := w.DB.CreateTable(db.Schema{
		Table: TableCrossRefs,
		Columns: []db.Column{
			{Name: "accession", Type: db.TString, NotNull: true},
			{Name: "canonical", Type: db.TString, NotNull: true},
		},
	})
	if err != nil {
		return err
	}
	tbl, _ := w.DB.Table(TableCrossRefs)
	return tbl.CreateBTreeIndex("accession")
}

// InitialLoadMatched bootstraps the warehouse like InitialLoad but resolves
// cross-repository accession aliases by sequence content first. Original
// accessions remain queryable through the crossrefs table.
func (w *Warehouse) InitialLoadMatched(repos []*sources.Repo, opts etl.MatchOptions) (etl.IntegrationStats, etl.MatchStats, error) {
	var entries []etl.Entry
	for _, r := range repos {
		recs, err := sources.Parse(r.Format(), r.Snapshot())
		if err != nil {
			return etl.IntegrationStats{}, etl.MatchStats{}, fmt.Errorf("warehouse: loading %s: %w", r.Name(), err)
		}
		es, errs := w.wrapper.WrapAll(recs, r.Name())
		if len(errs) > 0 {
			return etl.IntegrationStats{}, etl.MatchStats{}, fmt.Errorf("warehouse: wrapping %s: %d failures, first: %v", r.Name(), len(errs), errs[0])
		}
		entries = append(entries, es...)
	}
	merged, xref, istats, mstats := etl.IntegrateMatched(entries, opts)
	if err := w.Load(merged); err != nil {
		return istats, mstats, err
	}
	if err := w.EnsureCrossRefTable(); err != nil {
		return istats, mstats, err
	}
	accessions := make([]string, 0, len(xref))
	for acc := range xref {
		accessions = append(accessions, acc)
	}
	sort.Strings(accessions)
	muts := make([]db.Mutation, 0, len(accessions))
	for _, acc := range accessions {
		muts = append(muts, db.Mutation{Kind: db.MutInsert, Row: db.Row{acc, xref[acc]}})
	}
	if err := w.DB.ApplyDML(TableCrossRefs, muts); err != nil {
		return istats, mstats, err
	}
	return istats, mstats, nil
}

// ResolveAccession maps any accession — canonical or folded alias — to the
// canonical entity ID.
func (w *Warehouse) ResolveAccession(acc string) (string, error) {
	tbl, ok := w.DB.Table(TableCrossRefs)
	if !ok {
		return acc, nil
	}
	rids, err := tbl.IndexLookup("accession", acc)
	if err != nil {
		return "", err
	}
	if len(rids) == 0 {
		return acc, nil
	}
	row, err := tbl.Get(rids[0])
	if err != nil {
		return "", err
	}
	return row[1].(string), nil
}
