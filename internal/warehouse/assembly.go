package warehouse

import (
	"fmt"
	"sort"
	"strings"

	"genalg/internal/db"
	"genalg/internal/gdt"
	"genalg/internal/seq"
	"genalg/internal/storage"
)

// Additional public tables populated by AssembleGenomes, exercising the
// chromosome and genome GDTs of the paper's type system end-to-end.
const (
	TableChromosomes = "chromosomes"
	TableGenomes     = "genomes"
)

// interGeneSpacer separates concatenated gene sequences on an assembled
// chromosome, mimicking intergenic regions.
const interGeneSpacer = "TTTTAAAATTTTAAAA"

// EnsureAssemblyTables creates the chromosomes and genomes tables when
// absent. Separate from the integrated schema so existing persisted
// warehouses keep reopening.
func (w *Warehouse) EnsureAssemblyTables() error {
	if _, ok := w.DB.Table(TableChromosomes); !ok {
		_, err := w.DB.CreateTable(db.Schema{
			Table: TableChromosomes,
			Columns: []db.Column{
				{Name: "id", Type: db.TString, NotNull: true},
				{Name: "organism", Type: db.TString},
				{Name: "ngenes", Type: db.TInt},
				{Name: "chromosome", Type: db.TOpaque, UDTName: "chromosome"},
			},
		})
		if err != nil {
			return err
		}
		tbl, _ := w.DB.Table(TableChromosomes)
		if err := tbl.CreateBTreeIndex("id"); err != nil {
			return err
		}
	}
	if _, ok := w.DB.Table(TableGenomes); !ok {
		_, err := w.DB.CreateTable(db.Schema{
			Table: TableGenomes,
			Columns: []db.Column{
				{Name: "id", Type: db.TString, NotNull: true},
				{Name: "organism", Type: db.TString},
				{Name: "genome", Type: db.TOpaque, UDTName: "genome"},
			},
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// AssemblyStats reports what AssembleGenomes produced.
type AssemblyStats struct {
	Organisms   int
	Chromosomes int
	GenesPlaced int
}

// AssembleGenomes builds chromosome and genome GDT values from the loaded
// genes: per organism, genes are placed on chromosomes of at most
// genesPerChromosome loci (concatenated with intergenic spacers, alternating
// strands), and a genome value references the chromosomes. Results land in
// the chromosomes/genomes public tables, replacing any previous assembly.
func (w *Warehouse) AssembleGenomes(genesPerChromosome int) (AssemblyStats, error) {
	if genesPerChromosome < 1 {
		return AssemblyStats{}, fmt.Errorf("warehouse: genesPerChromosome must be positive")
	}
	if err := w.EnsureAssemblyTables(); err != nil {
		return AssemblyStats{}, err
	}
	genesTbl, _ := w.DB.Table(TableGenes)
	byOrganism := map[string][]gdt.Gene{}
	err := genesTbl.Scan(func(_ storage.RID, row db.Row) bool {
		g := row[8].(gdt.Gene)
		org := row[1].(string)
		byOrganism[org] = append(byOrganism[org], g)
		return true
	})
	if err != nil {
		return AssemblyStats{}, err
	}
	// Replace previous assembly.
	for _, tname := range []string{TableChromosomes, TableGenomes} {
		tbl, _ := w.DB.Table(tname)
		var rids []storage.RID
		if err := tbl.Scan(func(rid storage.RID, _ db.Row) bool {
			rids = append(rids, rid)
			return true
		}); err != nil {
			return AssemblyStats{}, err
		}
		muts := make([]db.Mutation, 0, len(rids))
		for _, rid := range rids {
			muts = append(muts, db.Mutation{Kind: db.MutDelete, RID: rid})
		}
		if err := w.DB.ApplyDML(tname, muts); err != nil {
			return AssemblyStats{}, err
		}
	}

	spacer := seq.MustNucSeq(seq.AlphaDNA, interGeneSpacer)
	stats := AssemblyStats{Organisms: len(byOrganism)}
	orgs := make([]string, 0, len(byOrganism))
	for org := range byOrganism {
		orgs = append(orgs, org)
	}
	sort.Strings(orgs)
	for _, org := range orgs {
		genes := byOrganism[org]
		sort.Slice(genes, func(i, j int) bool { return genes[i].ID < genes[j].ID })
		var chromIDs []string
		for chunk := 0; chunk*genesPerChromosome < len(genes); chunk++ {
			lo := chunk * genesPerChromosome
			hi := lo + genesPerChromosome
			if hi > len(genes) {
				hi = len(genes)
			}
			chrom, err := assembleChromosome(org, chunk+1, genes[lo:hi], spacer)
			if err != nil {
				return stats, err
			}
			err = w.DB.ApplyDML(TableChromosomes, []db.Mutation{{
				Kind: db.MutInsert, Row: db.Row{chrom.ID, org, int64(len(chrom.Loci)), chrom},
			}})
			if err != nil {
				return stats, err
			}
			chromIDs = append(chromIDs, chrom.ID)
			stats.Chromosomes++
			stats.GenesPlaced += len(chrom.Loci)
		}
		genome := gdt.Genome{
			ID:            genomeID(org),
			Organism:      org,
			ChromosomeIDs: chromIDs,
		}
		err := w.DB.ApplyDML(TableGenomes, []db.Mutation{{
			Kind: db.MutInsert, Row: db.Row{genome.ID, org, genome},
		}})
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

func genomeID(org string) string {
	return "genome:" + strings.ReplaceAll(strings.ToLower(org), " ", "_")
}

// assembleChromosome concatenates the genes with spacers, alternating
// strand orientation to exercise the reverse-strand code paths.
func assembleChromosome(org string, number int, genes []gdt.Gene, spacer seq.NucSeq) (gdt.Chromosome, error) {
	chrom := gdt.Chromosome{
		ID:   fmt.Sprintf("%s.chr%d", genomeID(org), number),
		Name: fmt.Sprintf("chr%d", number),
	}
	cur := spacer
	for i, g := range genes {
		placed := g.Seq
		reverse := i%2 == 1
		if reverse {
			placed = placed.ReverseComplement()
		}
		start := cur.Len()
		joined, err := cur.Append(placed)
		if err != nil {
			return gdt.Chromosome{}, err
		}
		joined, err = joined.Append(spacer)
		if err != nil {
			return gdt.Chromosome{}, err
		}
		cur = joined
		chrom.Loci = append(chrom.Loci, gdt.GeneLocus{
			GeneID:  g.ID,
			Span:    gdt.Interval{Start: start, End: start + g.Seq.Len()},
			Reverse: reverse,
		})
	}
	chrom.Seq = cur
	return chrom, nil
}
