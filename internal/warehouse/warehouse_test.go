package warehouse

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"genalg/internal/db"
	"genalg/internal/etl"
	"genalg/internal/gdt"
	"genalg/internal/ontology"
	"genalg/internal/sources"
	"genalg/internal/sqlang"
)

func newWarehouse(t testing.TB) *Warehouse {
	w, err := Open(2048, etl.NewWrapper(ontology.Standard()))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func twoRepos(t testing.TB, n int) []*sources.Repo {
	// Two repositories with overlapping content: same seed, one noisy.
	clean := sources.NewRepo("genbank1", sources.FormatGenBank, sources.CapNonQueryable,
		sources.Generate(100, sources.GenOptions{N: n}))
	noisy := sources.NewRepo("embl1", sources.FormatFASTA, sources.CapQueryable,
		sources.Generate(100, sources.GenOptions{N: n, ErrorRate: 0.4}))
	return []*sources.Repo{clean, noisy}
}

func mustQuery(t testing.TB, w *Warehouse, user, sql string) *sqlang.Result {
	t.Helper()
	r, err := w.Query(user, sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return r
}

func TestInitialLoadAndQuery(t *testing.T) {
	w := newWarehouse(t)
	repos := twoRepos(t, 30)
	stats, err := w.InitialLoad(repos)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entities != 30 || stats.Observations != 60 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Conflicts == 0 || stats.Duplicates == 0 {
		t.Errorf("expected both conflicts and duplicates: %+v", stats)
	}
	if w.CountPublic() != 30 {
		t.Errorf("CountPublic = %d", w.CountPublic())
	}
	// Fragment and gene tables are both populated (every 3rd record is a
	// gene).
	r := mustQuery(t, w, "alice", `SELECT COUNT(*) FROM genes`)
	if r.Rows[0][0] != int64(10) {
		t.Errorf("genes = %v", r.Rows)
	}
	r = mustQuery(t, w, "alice", `SELECT COUNT(*) FROM fragments`)
	if r.Rows[0][0] != int64(20) {
		t.Errorf("fragments = %v", r.Rows)
	}
	// Conflicting entities kept their alternatives.
	r = mustQuery(t, w, "alice", `SELECT COUNT(*) FROM fragment_alts`)
	alts := r.Rows[0][0].(int64)
	r = mustQuery(t, w, "alice", `SELECT COUNT(*) FROM gene_alts`)
	alts += r.Rows[0][0].(int64)
	if int(alts) != stats.Conflicts {
		t.Errorf("stored alternatives %d != conflicts %d", alts, stats.Conflicts)
	}
	// Merged rows report both sources.
	r = mustQuery(t, w, "alice", `SELECT source FROM fragments WHERE nsources = 2 LIMIT 1`)
	if len(r.Rows) == 0 || !strings.Contains(r.Rows[0][0].(string), "+") {
		t.Errorf("merged source = %v", r.Rows)
	}
}

func TestPublicSpaceReadOnly(t *testing.T) {
	w := newWarehouse(t)
	if _, err := w.Query("alice", `INSERT INTO fragments VALUES ('x','o','d','s',1,1.0,1.0,1, dna('x','ACGT'))`); err == nil {
		t.Error("insert into public table succeeded")
	}
	if _, err := w.Query("alice", `DELETE FROM fragments`); err == nil {
		t.Error("delete from public table succeeded")
	}
	if _, err := w.Query("alice", `CREATE INDEX ON fragments (organism)`); err == nil {
		t.Error("index on public table succeeded")
	}
	if _, err := w.Query("alice", `CREATE TABLE mine (x int)`); err == nil {
		t.Error("raw CREATE TABLE allowed")
	}
}

func TestUserSpaceIsolationAndSharing(t *testing.T) {
	w := newWarehouse(t)
	err := w.CreateUserTable("alice", db.Schema{
		Table: "alice_notes",
		Columns: []db.Column{
			{Name: "target", Type: db.TString},
			{Name: "note", Type: db.TString},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Owner can write and read.
	mustQuery(t, w, "alice", `INSERT INTO alice_notes VALUES ('SYN000001', 'looks like a promoter')`)
	r := mustQuery(t, w, "alice", `SELECT note FROM alice_notes`)
	if len(r.Rows) != 1 {
		t.Errorf("owner read = %v", r.Rows)
	}
	// Stranger can neither write nor read private tables.
	if _, err := w.Query("bob", `INSERT INTO alice_notes VALUES ('x','y')`); err == nil {
		t.Error("stranger wrote to private table")
	}
	if _, err := w.Query("bob", `SELECT * FROM alice_notes`); err == nil {
		t.Error("stranger read private table")
	}
	// Sharing opens reads, not writes.
	if err := w.ShareTable("bob", "alice_notes"); err == nil {
		t.Error("non-owner shared the table")
	}
	if err := w.ShareTable("alice", "alice_notes"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Query("bob", `SELECT * FROM alice_notes`); err != nil {
		t.Errorf("shared read failed: %v", err)
	}
	if _, err := w.Query("bob", `INSERT INTO alice_notes VALUES ('x','y')`); err == nil {
		t.Error("shared table writable by stranger")
	}
	// Collision with public names is rejected.
	if err := w.CreateUserTable("alice", db.Schema{Table: "fragments", Columns: []db.Column{{Name: "x", Type: db.TInt}}}); err == nil {
		t.Error("public-name collision accepted")
	}
}

func TestUserCanJoinPublicAndPrivate(t *testing.T) {
	w := newWarehouse(t)
	repos := twoRepos(t, 12)
	if _, err := w.InitialLoad(repos); err != nil {
		t.Fatal(err)
	}
	err := w.CreateUserTable("alice", db.Schema{
		Table: "mylabels",
		Columns: []db.Column{
			{Name: "fid", Type: db.TString},
			{Name: "label", Type: db.TString},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mustQuery(t, w, "alice", `INSERT INTO mylabels VALUES ('SYN000001', 'interesting')`)
	r := mustQuery(t, w, "alice",
		`SELECT f.id, m.label FROM fragments f JOIN mylabels m ON f.id = m.fid`)
	if len(r.Rows) != 1 || r.Rows[0][1] != "interesting" {
		t.Errorf("join = %v", r.Rows)
	}
}

func TestIncrementalMaintenance(t *testing.T) {
	w := newWarehouse(t)
	repo := sources.NewRepo("genbank1", sources.FormatGenBank, sources.CapLogged,
		sources.Generate(200, sources.GenOptions{N: 40}))
	if _, err := w.InitialLoad([]*sources.Repo{repo}); err != nil {
		t.Fatal(err)
	}
	det, err := etl.NewLogMonitor(repo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Poll(context.Background()); err != nil { // drain initial-load history
		t.Fatal(err)
	}
	repo.ApplyRandomUpdates(7, 15)
	deltas, err := det.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) == 0 {
		t.Fatal("no deltas detected")
	}
	if err := w.ApplyDeltas(deltas); err != nil {
		t.Fatal(err)
	}
	// The warehouse now mirrors the source exactly.
	assertMirrors(t, w, repo)
}

// assertMirrors checks that every source record appears in the public space
// with the same sequence, and the public count matches.
func assertMirrors(t *testing.T, w *Warehouse, repo *sources.Repo) {
	t.Helper()
	recs := repo.Records()
	if got := w.CountPublic(); got != len(recs) {
		t.Errorf("public entities = %d, source has %d", got, len(recs))
	}
	assertRecordsPresent(t, w, recs)
}

// assertRecordsPresent checks each source record appears in the public
// space with the same sequence (no count assertion, so it composes across
// multiple sources).
func assertRecordsPresent(t *testing.T, w *Warehouse, recs []sources.Record) {
	t.Helper()
	for _, rec := range recs {
		table := TableFragments
		col := 8
		if rec.ExonSpec != "" {
			table = TableGenes
		}
		r, err := w.Query("test", fmt.Sprintf(`SELECT * FROM %s WHERE id = '%s'`, table, rec.ID))
		if err != nil {
			t.Fatalf("query %s: %v", rec.ID, err)
		}
		if len(r.Rows) != 1 {
			t.Errorf("record %s: %d rows in %s", rec.ID, len(r.Rows), table)
			continue
		}
		var seqStr string
		switch v := r.Rows[0][col].(type) {
		case gdt.DNA:
			seqStr = v.Seq.String()
		case gdt.Gene:
			seqStr = v.Seq.String()
		}
		if seqStr != rec.Sequence {
			t.Errorf("record %s sequence mismatch after maintenance", rec.ID)
		}
	}
}

func TestIncrementalEqualsFullReload(t *testing.T) {
	// Core self-maintainability check: applying deltas yields the same
	// state as reloading from scratch.
	wInc := newWarehouse(t)
	wFull := newWarehouse(t)
	repo1 := sources.NewRepo("src", sources.FormatCSV, sources.CapQueryable,
		sources.Generate(300, sources.GenOptions{N: 50}))
	repo2 := sources.NewRepo("src", sources.FormatCSV, sources.CapQueryable,
		sources.Generate(300, sources.GenOptions{N: 50}))
	if _, err := wInc.InitialLoad([]*sources.Repo{repo1}); err != nil {
		t.Fatal(err)
	}
	det, err := etl.NewSnapshotDiffMonitor(repo1)
	if err != nil {
		t.Fatal(err)
	}
	repo1.ApplyRandomUpdates(11, 25)
	repo2.ApplyRandomUpdates(11, 25) // identical mutation stream
	deltas, err := det.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := wInc.ApplyDeltas(deltas); err != nil {
		t.Fatal(err)
	}
	if _, err := wFull.InitialLoad([]*sources.Repo{repo2}); err != nil {
		t.Fatal(err)
	}
	assertMirrors(t, wInc, repo1)
	assertMirrors(t, wFull, repo2)
	if wInc.CountPublic() != wFull.CountPublic() {
		t.Errorf("incremental %d entities, full reload %d", wInc.CountPublic(), wFull.CountPublic())
	}
}

func TestManualRefreshDefersUpdates(t *testing.T) {
	w := newWarehouse(t)
	repo := sources.NewRepo("src", sources.FormatCSV, sources.CapQueryable,
		sources.Generate(400, sources.GenOptions{N: 20}))
	if _, err := w.InitialLoad([]*sources.Repo{repo}); err != nil {
		t.Fatal(err)
	}
	det, _ := etl.NewSnapshotDiffMonitor(repo)
	w.SetManualRefresh(true)
	repo.ApplyRandomUpdates(3, 10)
	deltas, _ := det.Poll(context.Background())
	if err := w.ApplyDeltas(deltas); err != nil {
		t.Fatal(err)
	}
	if w.PendingDeltas() != len(deltas) {
		t.Errorf("pending = %d, want %d", w.PendingDeltas(), len(deltas))
	}
	// Warehouse content unchanged until Refresh.
	before := w.CountPublic()
	_ = before
	n, err := w.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(deltas) || w.PendingDeltas() != 0 {
		t.Errorf("Refresh applied %d, pending %d", n, w.PendingDeltas())
	}
	assertMirrors(t, w, repo)
}

func TestDeleteOfMergedEntityKeepsOtherSource(t *testing.T) {
	w := newWarehouse(t)
	repos := twoRepos(t, 9)
	if _, err := w.InitialLoad(repos); err != nil {
		t.Fatal(err)
	}
	// Simulate source embl1 deleting SYN000001.
	rec := repos[1].Records()[1]
	d := etl.Delta{Source: "embl1", Kind: sources.MutDelete, ID: rec.ID, Before: &rec, Tick: 1}
	if err := w.ApplyDeltas([]etl.Delta{d}); err != nil {
		t.Fatal(err)
	}
	// The entity survives, now attributed only to genbank1.
	r := mustQuery(t, w, "x", fmt.Sprintf(`SELECT source FROM fragments WHERE id = '%s'`, rec.ID))
	if len(r.Rows) != 1 {
		t.Fatalf("entity gone after partial delete: %v", r.Rows)
	}
	if src := r.Rows[0][0].(string); strings.Contains(src, "embl1") {
		t.Errorf("source still lists embl1: %q", src)
	}
}

func TestArchiveAndRestore(t *testing.T) {
	w := newWarehouse(t)
	repos := twoRepos(t, 12)
	if _, err := w.InitialLoad(repos); err != nil {
		t.Fatal(err)
	}
	n, err := w.ArchiveSource("genbank1", 12345)
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Errorf("archived = %d, want 12", n)
	}
	restored, err := w.RestoreFromArchive("genbank1")
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 12 {
		t.Errorf("restored = %d", len(restored))
	}
	for _, v := range restored {
		if v.Kind() != gdt.KindDNA && v.Kind() != gdt.KindGene {
			t.Errorf("restored kind = %v", v.Kind())
		}
	}
	// Archive of an unknown source archives nothing.
	n, err = w.ArchiveSource("nosuch", 1)
	if err != nil || n != 0 {
		t.Errorf("unknown source archive = %d, %v", n, err)
	}
}

func TestGenomicQueriesOverWarehouse(t *testing.T) {
	w := newWarehouse(t)
	repos := twoRepos(t, 15)
	if _, err := w.InitialLoad(repos); err != nil {
		t.Fatal(err)
	}
	// The paper's flagship query shape over the warehouse, with an algebra
	// UDF in WHERE.
	rec := repos[0].Records()[1]
	pat := rec.Sequence[40:64]
	r := mustQuery(t, w, "alice",
		fmt.Sprintf(`SELECT id FROM fragments WHERE contains(fragment, '%s')`, pat))
	found := false
	for _, row := range r.Rows {
		if row[0] == rec.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("contains query missed %s: %v", rec.ID, r.Rows)
	}
	// Central dogma over stored genes.
	r = mustQuery(t, w, "alice",
		`SELECT id, length(translate(splice(transcribe(gene)))) FROM genes LIMIT 3`)
	if len(r.Rows) == 0 {
		t.Error("no gene pipeline results")
	}
	for _, row := range r.Rows {
		if row[1].(int64) <= 0 {
			t.Errorf("empty protein for %v", row[0])
		}
	}
}

func BenchmarkInitialLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := newWarehouse(b)
		repos := twoRepos(b, 100)
		if _, err := w.InitialLoad(repos); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIncrementalMaintenance(b *testing.B) {
	w := newWarehouse(b)
	repo := sources.NewRepo("src", sources.FormatCSV, sources.CapQueryable,
		sources.Generate(1, sources.GenOptions{N: 500}))
	if _, err := w.InitialLoad([]*sources.Repo{repo}); err != nil {
		b.Fatal(err)
	}
	det, _ := etl.NewSnapshotDiffMonitor(repo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		repo.ApplyRandomUpdates(int64(i), 5)
		deltas, err := det.Poll(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if err := w.ApplyDeltas(deltas); err != nil {
			b.Fatal(err)
		}
	}
}

func TestUpdateRespectsSpaces(t *testing.T) {
	w := newWarehouse(t)
	repos := twoRepos(t, 6)
	if _, err := w.InitialLoad(repos); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Query("alice", `UPDATE fragments SET quality = 0`); err == nil {
		t.Error("public table updated by user")
	}
	if err := w.CreateUserTable("alice", db.Schema{
		Table:   "alice_t",
		Columns: []db.Column{{Name: "n", Type: db.TInt}},
	}); err != nil {
		t.Fatal(err)
	}
	mustQuery(t, w, "alice", `INSERT INTO alice_t VALUES (1)`)
	if _, err := w.Query("bob", `UPDATE alice_t SET n = 2`); err == nil {
		t.Error("stranger updated private table")
	}
	r := mustQuery(t, w, "alice", `UPDATE alice_t SET n = 5`)
	if r.Affected != 1 {
		t.Errorf("owner update affected = %d", r.Affected)
	}
}

func TestWarehousePersistence(t *testing.T) {
	dir := t.TempDir()
	wrapper := etl.NewWrapper(ontology.Standard())
	w, err := OpenFile(dir, 256, wrapper)
	if err != nil {
		t.Fatal(err)
	}
	repos := twoRepos(t, 15)
	if _, err := w.InitialLoad(repos); err != nil {
		t.Fatal(err)
	}
	// User space content persists too.
	if err := w.CreateUserTable("alice", db.Schema{
		Table:   "alice_p",
		Columns: []db.Column{{Name: "note", Type: db.TString}},
	}); err != nil {
		t.Fatal(err)
	}
	mustQuery(t, w, "alice", `INSERT INTO alice_p VALUES ('persisted note')`)
	if err := w.ShareTable("alice", "alice_p"); err != nil {
		t.Fatal(err)
	}
	beforeCount := w.CountPublic()
	if err := w.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen.
	w2, err := OpenExisting(dir, 256, wrapper)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.CountPublic(); got != beforeCount {
		t.Errorf("public entities after reopen = %d, want %d", got, beforeCount)
	}
	// Queries (including algebra UDFs) still work.
	r := mustQuery(t, w2, "bob", `SELECT id, length(translate(splice(transcribe(gene)))) FROM genes LIMIT 1`)
	if len(r.Rows) != 1 {
		t.Errorf("pipeline after reopen = %v", r.Rows)
	}
	// Ownership and sharing survived.
	r = mustQuery(t, w2, "bob", `SELECT note FROM alice_p`)
	if len(r.Rows) != 1 || r.Rows[0][0] != "persisted note" {
		t.Errorf("shared user table after reopen = %v", r.Rows)
	}
	if _, err := w2.Query("bob", `INSERT INTO alice_p VALUES ('x')`); err == nil {
		t.Error("ownership lost across reopen")
	}
	// Maintenance continues on the reopened warehouse.
	det, err := etl.NewSnapshotDiffMonitor(repos[1])
	if err != nil {
		t.Fatal(err)
	}
	repos[1].ApplyRandomUpdates(5, 4)
	deltas, err := det.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.ApplyDeltas(deltas); err != nil {
		t.Fatal(err)
	}
	// Double-create in a used directory is rejected.
	if _, err := OpenFile(dir, 64, wrapper); err == nil {
		t.Error("OpenFile over existing warehouse succeeded")
	}
}

func TestAssembleGenomes(t *testing.T) {
	w := newWarehouse(t)
	repos := twoRepos(t, 30) // 10 genes, one organism
	if _, err := w.InitialLoad(repos); err != nil {
		t.Fatal(err)
	}
	stats, err := w.AssembleGenomes(4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Organisms != 1 || stats.GenesPlaced != 10 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Chromosomes != 3 { // ceil(10/4)
		t.Errorf("chromosomes = %d", stats.Chromosomes)
	}
	// Chromosome-level ops through SQL.
	r := mustQuery(t, w, "u", `SELECT id, locuscount(chromosome), length(chromosome) FROM chromosomes ORDER BY id`)
	if len(r.Rows) != 3 {
		t.Fatalf("chromosome rows = %v", r.Rows)
	}
	totalLoci := int64(0)
	for _, row := range r.Rows {
		totalLoci += row[1].(int64)
		if row[2].(int64) == 0 {
			t.Errorf("empty chromosome %v", row[0])
		}
	}
	if totalLoci != 10 {
		t.Errorf("total loci = %d", totalLoci)
	}
	// Genome row references all chromosomes.
	r = mustQuery(t, w, "u", `SELECT organism(genome), chromosomecount(genome) FROM genomes`)
	if len(r.Rows) != 1 || r.Rows[0][1].(int64) != 3 {
		t.Errorf("genome rows = %v", r.Rows)
	}
	// extractgene round-trips: cutting a locus back out yields the original
	// gene sequence, including reverse-strand placements.
	r = mustQuery(t, w, "u", `SELECT chromosome FROM chromosomes`)
	for _, row := range r.Rows {
		chrom := row[0].(gdt.Chromosome)
		for _, locus := range chrom.Loci {
			rg := mustQuery(t, w, "u",
				fmt.Sprintf(`SELECT gene FROM genes WHERE id = '%s'`, locus.GeneID))
			if len(rg.Rows) != 1 {
				t.Fatalf("gene %s missing", locus.GeneID)
			}
			orig := rg.Rows[0][0].(gdt.Gene)
			re := mustQuery(t, w, "u", fmt.Sprintf(
				`SELECT geneseq(extractgene(chromosome, '%s')) FROM chromosomes WHERE id = '%s'`,
				locus.GeneID, chrom.ID))
			got := re.Rows[0][0].(gdt.DNA)
			if !got.Seq.Equal(orig.Seq) {
				t.Errorf("extractgene(%s) mismatch (reverse=%v)", locus.GeneID, locus.Reverse)
			}
		}
	}
	// Assembly tables are read-only public space.
	if _, err := w.Query("u", `DELETE FROM chromosomes`); err == nil {
		t.Error("user deleted from chromosomes")
	}
	// Re-assembly replaces rather than duplicates.
	if _, err := w.AssembleGenomes(4); err != nil {
		t.Fatal(err)
	}
	r = mustQuery(t, w, "u", `SELECT COUNT(*) FROM chromosomes`)
	if r.Rows[0][0].(int64) != 3 {
		t.Errorf("re-assembly duplicated rows: %v", r.Rows)
	}
	// Validation.
	if _, err := w.AssembleGenomes(0); err == nil {
		t.Error("genesPerChromosome=0 accepted")
	}
}

func TestFullReloadMatchesSource(t *testing.T) {
	w := newWarehouse(t)
	repo := sources.NewRepo("src", sources.FormatCSV, sources.CapQueryable,
		sources.Generate(600, sources.GenOptions{N: 40}))
	if _, err := w.InitialLoad([]*sources.Repo{repo}); err != nil {
		t.Fatal(err)
	}
	repo.ApplyRandomUpdates(13, 20)
	if err := w.FullReload([]*sources.Repo{repo}); err != nil {
		t.Fatal(err)
	}
	assertMirrors(t, w, repo)
	// Reload twice is idempotent.
	if err := w.FullReload([]*sources.Repo{repo}); err != nil {
		t.Fatal(err)
	}
	assertMirrors(t, w, repo)
}

func TestUpsertMergesAcrossSourcesIncrementally(t *testing.T) {
	// Load from the clean source only; then an update arrives from a noisy
	// second source for the same entity: the warehouse must keep the
	// higher-quality primary and record the noisy one as an alternative.
	w := newWarehouse(t)
	clean := sources.NewRepo("clean", sources.FormatCSV, sources.CapQueryable,
		sources.Generate(700, sources.GenOptions{N: 6}))
	if _, err := w.InitialLoad([]*sources.Repo{clean}); err != nil {
		t.Fatal(err)
	}
	noisyRecs := sources.Generate(700, sources.GenOptions{N: 6, ErrorRate: 1})
	rec := noisyRecs[1] // fragment (not a gene), mutated + low quality
	d := etl.Delta{Source: "noisy", Kind: sources.MutInsert, ID: rec.ID, After: &rec, Tick: 1}
	if err := w.ApplyDeltas([]etl.Delta{d}); err != nil {
		t.Fatal(err)
	}
	r := mustQuery(t, w, "u", fmt.Sprintf(`SELECT source, nsources, quality FROM fragments WHERE id = '%s'`, rec.ID))
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if !strings.Contains(r.Rows[0][0].(string), "clean") {
		t.Errorf("primary source = %v", r.Rows[0][0])
	}
	if r.Rows[0][2].(float64) < 0.9 {
		t.Errorf("noisy observation won: quality %v", r.Rows[0][2])
	}
	ra := mustQuery(t, w, "u", fmt.Sprintf(`SELECT provenance FROM fragment_alts WHERE id = '%s'`, rec.ID))
	if len(ra.Rows) != 1 || ra.Rows[0][0] != "noisy" {
		t.Errorf("alternative = %v", ra.Rows)
	}
	// A further update from the noisy source replaces its own alternative,
	// not the clean primary.
	rec2 := rec
	rec2.Version++
	rec2.Description = "revised"
	d2 := etl.Delta{Source: "noisy", Kind: sources.MutUpdate, ID: rec.ID, Before: &rec, After: &rec2, Tick: 2}
	if err := w.ApplyDeltas([]etl.Delta{d2}); err != nil {
		t.Fatal(err)
	}
	ra = mustQuery(t, w, "u", fmt.Sprintf(`SELECT provenance FROM fragment_alts WHERE id = '%s'`, rec.ID))
	if len(ra.Rows) != 1 {
		t.Errorf("alternatives after re-update = %v", ra.Rows)
	}
}

func TestOpenExistingErrors(t *testing.T) {
	wrapper := etl.NewWrapper(ontology.Standard())
	if _, err := OpenExisting(t.TempDir(), 64, wrapper); err == nil {
		t.Error("OpenExisting on empty dir succeeded")
	}
}

func TestApplyDeltaErrors(t *testing.T) {
	w := newWarehouse(t)
	// Insert delta without after-image.
	d := etl.Delta{Source: "s", Kind: sources.MutInsert, ID: "x"}
	if err := w.ApplyDeltas([]etl.Delta{d}); err == nil {
		t.Error("insert delta without after accepted")
	}
	// Delete of an unknown entity is a harmless no-op.
	del := etl.Delta{Source: "s", Kind: sources.MutDelete, ID: "ghost"}
	if err := w.ApplyDeltas([]etl.Delta{del}); err != nil {
		t.Errorf("delete of unknown entity errored: %v", err)
	}
}

func TestInitialLoadMatchedResolvesAliases(t *testing.T) {
	w := newWarehouse(t)
	// Same biology under two accession schemes.
	repos := []*sources.Repo{
		sources.NewRepo("genbank1", sources.FormatGenBank, sources.CapNonQueryable,
			sources.Generate(321, sources.GenOptions{N: 12, IDPrefix: "GBK"})),
		sources.NewRepo("embl1", sources.FormatFASTA, sources.CapQueryable,
			sources.Generate(321, sources.GenOptions{N: 12, IDPrefix: "EMB"})),
	}
	istats, mstats, err := w.InitialLoadMatched(repos, etl.MatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mstats.ExactMerges != 12 {
		t.Errorf("match stats = %+v", mstats)
	}
	if w.CountPublic() != 12 {
		t.Errorf("entities = %d, want 12 (24 observations folded)", w.CountPublic())
	}
	if istats.Observations != 24 {
		t.Errorf("integration stats = %+v", istats)
	}
	// The crossrefs table answers alias lookups through SQL...
	r := mustQuery(t, w, "u", `SELECT COUNT(*) FROM crossrefs`)
	if r.Rows[0][0].(int64) != 12 {
		t.Errorf("crossrefs = %v", r.Rows)
	}
	// ...and through the API, in both directions.
	canon, err := w.ResolveAccession("GBK000005")
	if err != nil || canon != "EMB000005" {
		t.Errorf("ResolveAccession(GBK000005) = %q, %v", canon, err)
	}
	canon, err = w.ResolveAccession("EMB000005")
	if err != nil || canon != "EMB000005" {
		t.Errorf("ResolveAccession(EMB000005) = %q, %v", canon, err)
	}
	// The resolved entity is queryable with its full provenance.
	rr := mustQuery(t, w, "u", fmt.Sprintf(`SELECT source, nsources FROM fragments WHERE id = '%s'`, canon))
	if len(rr.Rows) != 1 || rr.Rows[0][1].(int64) != 2 {
		t.Errorf("merged entity = %v", rr.Rows)
	}
	// crossrefs is public-space read-only.
	if _, err := w.Query("u", `DELETE FROM crossrefs`); err == nil {
		t.Error("user deleted crossrefs")
	}
}

func TestResolveAccessionWithoutMatching(t *testing.T) {
	w := newWarehouse(t)
	// No crossrefs table: accessions resolve to themselves.
	got, err := w.ResolveAccession("ANY123")
	if err != nil || got != "ANY123" {
		t.Errorf("ResolveAccession = %q, %v", got, err)
	}
}

// TestLongSoakMaintenance runs many rounds of concurrent multi-source
// change detection and incremental maintenance, verifying at the end that
// the warehouse exactly mirrors every source.
func TestLongSoakMaintenance(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	w := newWarehouse(t)
	repos := []*sources.Repo{
		sources.NewRepo("act", sources.FormatCSV, sources.CapActive,
			sources.Generate(1000, sources.GenOptions{N: 60, IDPrefix: "ACT"})),
		sources.NewRepo("log", sources.FormatGenBank, sources.CapLogged,
			sources.Generate(1001, sources.GenOptions{N: 60, IDPrefix: "LOG"})),
		sources.NewRepo("qry", sources.FormatCSV, sources.CapQueryable,
			sources.Generate(1002, sources.GenOptions{N: 60, IDPrefix: "QRY"})),
		sources.NewRepo("ace", sources.FormatACeDB, sources.CapNonQueryable,
			sources.Generate(1003, sources.GenOptions{N: 60, IDPrefix: "ACE"})),
		sources.NewRepo("fas", sources.FormatFASTA, sources.CapNonQueryable,
			sources.Generate(1004, sources.GenOptions{N: 60, IDPrefix: "FAS"})),
	}
	if _, err := w.InitialLoad(repos); err != nil {
		t.Fatal(err)
	}
	var dets []etl.Detector
	for _, r := range repos {
		d, err := etl.ForRepo(r)
		if err != nil {
			t.Fatal(err)
		}
		if lm, ok := d.(*etl.LogMonitor); ok {
			if _, err := lm.Poll(context.Background()); err != nil { // drain pre-load history
				t.Fatal(err)
			}
		}
		dets = append(dets, d)
	}
	pipe := etl.NewPipeline(dets, w.ApplyDeltas)
	for round := 0; round < 25; round++ {
		for i, r := range repos {
			r.ApplyRandomUpdates(int64(round*31+i), 6)
		}
		if _, err := pipe.Round(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	st := pipe.Stats()
	if st.Rounds != 25 || st.Deltas == 0 {
		t.Errorf("pipeline stats = %d rounds, %d deltas", st.Rounds, st.Deltas)
	}
	wantTotal := 0
	for _, r := range repos {
		assertRecordsPresent(t, w, r.Records())
		wantTotal += len(r.Records())
	}
	if got := w.CountPublic(); got != wantTotal {
		t.Errorf("public entities = %d, sources hold %d", got, wantTotal)
	}
}
