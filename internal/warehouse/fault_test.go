package warehouse

import (
	"context"
	"fmt"
	"testing"
	"time"

	"genalg/internal/etl"
	"genalg/internal/faultsrc"
	"genalg/internal/sources"
)

// testPolicy is fast and deterministic: instant backoff, tight per-poll
// deadlines, no breaker (breaker behavior gets its own test).
func testPolicy(seed int64) etl.RetryPolicy {
	return etl.RetryPolicy{
		MaxAttempts: 4,
		PollTimeout: 25 * time.Millisecond,
		Seed:        seed,
		Sleep:       func(time.Duration) {},
	}
}

// TestFaultMatrixConvergence is E13's core claim: for every Figure-2
// monitor type and every injectable failure mode, a warehouse ingesting
// through a faulty transport converges to the fault-free source state once
// the faults stop — no lost updates, no phantom rows, at most quarantined
// evidence on the side.
func TestFaultMatrixConvergence(t *testing.T) {
	monitors := []struct {
		name   string
		cap    sources.Capability
		format sources.Format
	}{
		{"trigger", sources.CapActive, sources.FormatCSV},
		{"log", sources.CapLogged, sources.FormatCSV},
		{"snapshot-diff", sources.CapQueryable, sources.FormatCSV},
		{"lcs-diff", sources.CapNonQueryable, sources.FormatFASTA},
		{"tree-diff", sources.CapNonQueryable, sources.FormatACeDB},
	}
	modes := []faultsrc.Mode{
		faultsrc.ModeTransient, faultsrc.ModeTimeout, faultsrc.ModeTruncate,
		faultsrc.ModeCorrupt, faultsrc.ModePermanent,
	}
	const rounds, settle, updatesPerRound = 8, 3, 4

	for mi, mon := range monitors {
		for fi, mode := range modes {
			t.Run(fmt.Sprintf("%s/%s", mon.name, mode), func(t *testing.T) {
				seed := int64(mi*100 + fi)
				repo := sources.NewRepo("src", mon.format, mon.cap,
					sources.Generate(seed, sources.GenOptions{N: 12}))
				w := newWarehouse(t)
				if _, err := w.InitialLoad([]*sources.Repo{repo}); err != nil {
					t.Fatal(err)
				}

				inj := faultsrc.Wrap(repo, faultsrc.Config{
					Seed:  seed + 1,
					Rates: map[faultsrc.Mode]float64{mode: 0.45},
					Hang:  2 * time.Millisecond,
				})
				// Build the monitor and drain pre-load history on a clean
				// transport; then the faults start.
				inj.SetEnabled(false)
				det, err := etl.ForRepo(inj)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := det.Poll(context.Background()); err != nil {
					t.Fatal(err)
				}
				inj.SetEnabled(true)

				pipe := etl.NewReportingPipeline([]etl.Detector{det}, w.ApplyDeltasReport)
				pipe.SetRetryPolicy(testPolicy(seed + 2))

				ctx := context.Background()
				active := mon.cap == sources.CapActive
				for round := 0; round < rounds; round++ {
					repo.ApplyRandomUpdates(seed+int64(round), updatesPerRound)
					if active {
						// Trigger delivery crosses the injector's relay
						// goroutine; give it a beat so delays actually draw.
						time.Sleep(2 * time.Millisecond)
					}
					if _, err := pipe.RoundDetailed(ctx); err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
				}

				// Faults off, held triggers flushed: the system must settle.
				inj.Quiesce()
				if active {
					time.Sleep(20 * time.Millisecond) // let the relay drain
				}
				for i := 0; i < settle; i++ {
					if rep, err := pipe.RoundDetailed(ctx); err != nil {
						t.Fatalf("settle round %d: %v (report %+v)", i, err, rep)
					}
				}

				assertMirrors(t, w, repo)

				st := pipe.Stats()
				if st.Rounds != rounds+settle {
					t.Errorf("stats.Rounds = %d, want %d", st.Rounds, rounds+settle)
				}
				// One detector, no breaker: every round is one poll, and each
				// poll is 1 + its retries attempts.
				if st.Attempts != st.Rounds+st.Retries {
					t.Errorf("attempts %d != rounds %d + retries %d",
						st.Attempts, st.Rounds, st.Retries)
				}
				if int64(w.QuarantineCount()) != st.Quarantined {
					t.Errorf("quarantine table has %d rows, stats say %d",
						w.QuarantineCount(), st.Quarantined)
				}
				// The poll-path modes must actually have injected something
				// (trigger monitors never fetch, so only delivery delays
				// apply there).
				c := inj.Counts()
				if mon.cap == sources.CapActive {
					if mode == faultsrc.ModeTransient && c.Delayed == 0 {
						t.Error("no trigger delivery was ever delayed")
					}
				} else if c.Total() == 0 {
					t.Errorf("mode %s never injected across %d rounds", mode, rounds)
				}
			})
		}
	}
}

// TestPermanentOutageBreakerRecovery takes a source fully down mid-stream:
// the breaker must trip (skipping the dead source without burning
// retries), and once the source is back and the cooldown passes, the
// warehouse must catch up completely.
func TestPermanentOutageBreakerRecovery(t *testing.T) {
	repo := sources.NewRepo("src", sources.FormatCSV, sources.CapQueryable,
		sources.Generate(77, sources.GenOptions{N: 10}))
	w := newWarehouse(t)
	if _, err := w.InitialLoad([]*sources.Repo{repo}); err != nil {
		t.Fatal(err)
	}
	inj := faultsrc.Wrap(repo, faultsrc.Config{Seed: 1})
	det, err := etl.ForRepo(inj)
	if err != nil {
		t.Fatal(err)
	}
	pipe := etl.NewReportingPipeline([]etl.Detector{det}, w.ApplyDeltasReport)
	pipe.SetRetryPolicy(etl.RetryPolicy{
		MaxAttempts:      3,
		BreakerThreshold: 2,
		BreakerCooldown:  5 * time.Millisecond,
		Sleep:            func(time.Duration) {},
	})
	ctx := context.Background()

	inj.SetDown(true)
	for round := 0; round < 4; round++ {
		repo.ApplyRandomUpdates(int64(round), 3)
		rep, err := pipe.RoundDetailed(ctx)
		if err != nil {
			t.Fatalf("outage round %d: %v", round, err)
		}
		if len(rep.Failed) != 1 {
			t.Fatalf("outage round %d: report %+v, want the source failed", round, rep)
		}
	}
	st := pipe.Stats()
	if st.SourceFailures == 0 {
		t.Fatal("no source failures recorded during the outage")
	}
	if st.BreakerOpen == 0 {
		t.Fatal("breaker never skipped a poll during the outage")
	}
	// Permanent errors must not burn the retry budget: attempts ==
	// non-skipped polls exactly.
	if st.Retries != 0 {
		t.Errorf("retries = %d during a permanent outage, want 0", st.Retries)
	}

	inj.SetDown(false)
	time.Sleep(10 * time.Millisecond) // let the cooldown pass
	for i := 0; i < 3; i++ {
		if _, err := pipe.RoundDetailed(ctx); err != nil {
			t.Fatalf("recovery round %d: %v", i, err)
		}
		time.Sleep(6 * time.Millisecond)
	}
	if got := pipe.BreakerState(0); got != "closed" {
		t.Errorf("breaker = %s after recovery, want closed", got)
	}
	assertMirrors(t, w, repo)
}

// TestApplyDeltasDuplicateKeys feeds the same delta batch twice — the
// at-least-once shape flaky trigger delivery produces. Application must be
// idempotent: no error, no double rows.
func TestApplyDeltasDuplicateKeys(t *testing.T) {
	repo := sources.NewRepo("src", sources.FormatCSV, sources.CapQueryable,
		sources.Generate(31, sources.GenOptions{N: 8}))
	w := newWarehouse(t)
	if _, err := w.InitialLoad([]*sources.Repo{repo}); err != nil {
		t.Fatal(err)
	}
	det, err := etl.NewSnapshotDiffMonitor(repo)
	if err != nil {
		t.Fatal(err)
	}
	repo.ApplyRandomUpdates(5, 6)
	deltas, err := det.Poll(context.Background())
	if err != nil || len(deltas) == 0 {
		t.Fatalf("poll = %d deltas, %v", len(deltas), err)
	}
	for pass := 0; pass < 2; pass++ {
		rep, err := w.ApplyDeltasReport(deltas)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if rep.Quarantined != 0 {
			t.Fatalf("pass %d quarantined %d clean deltas", pass, rep.Quarantined)
		}
	}
	assertMirrors(t, w, repo)
}

// TestQuarantineDuringMaintenance forges a delta whose after-image cannot
// be wrapped and checks it lands in the quarantine table with its payload
// while the rest of the batch applies.
func TestQuarantineDuringMaintenance(t *testing.T) {
	repo := sources.NewRepo("src", sources.FormatCSV, sources.CapQueryable,
		sources.Generate(13, sources.GenOptions{N: 5}))
	w := newWarehouse(t)
	if _, err := w.InitialLoad([]*sources.Repo{repo}); err != nil {
		t.Fatal(err)
	}
	good := sources.Record{ID: "NEW1", Version: 1, Organism: "Homo sapiens",
		Description: "ok", Sequence: "ACGTACGT"}
	bad := sources.Record{ID: "BAD9", Version: 1, Organism: "Homo sapiens",
		Description: "junk", Sequence: "!!!not-dna!!!"}
	batch := []etl.Delta{
		{Source: "src", ID: good.ID, Kind: sources.MutInsert, After: &good, Tick: 900},
		{Source: "src", ID: bad.ID, Kind: sources.MutInsert, After: &bad, Tick: 901},
	}
	rep, err := w.ApplyDeltasReport(batch)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecordsOK != 1 || rep.Quarantined != 1 {
		t.Fatalf("report = %+v, want 1 ok / 1 quarantined", rep)
	}
	qs, err := w.Quarantined()
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 1 || qs[0].ID != "BAD9" || qs[0].Stage != "maintenance" || qs[0].Tick != 901 {
		t.Fatalf("quarantine = %+v", qs)
	}
	if qs[0].Payload == "" || qs[0].Reason == "" {
		t.Fatalf("quarantine row lost its evidence: %+v", qs[0])
	}
	res := mustQuery(t, w, "alice", `SELECT id FROM quarantine WHERE stage = 'maintenance'`)
	if len(res.Rows) != 1 {
		t.Errorf("SQL over quarantine returned %d rows", len(res.Rows))
	}
	res = mustQuery(t, w, "alice", `SELECT id FROM fragments WHERE id = 'NEW1'`)
	if len(res.Rows) != 1 {
		t.Errorf("good record in the same batch did not land")
	}
}
