package warehouse

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"genalg/internal/db"
	"genalg/internal/etl"
	"genalg/internal/sources"
)

// dumpPublic reads the full ordered contents of the public space, used to
// compare warehouses loaded with different worker counts.
func dumpPublic(t *testing.T, w *Warehouse) map[string][]db.Row {
	t.Helper()
	out := make(map[string][]db.Row)
	for _, q := range []struct{ name, sql string }{
		{TableFragments, `SELECT id, organism, source, version, quality, nsources FROM fragments ORDER BY id`},
		{TableGenes, `SELECT id, organism, source, version, quality, nsources FROM genes ORDER BY id`},
		{TableFragmentAlts, `SELECT id, provenance, confidence FROM fragment_alts ORDER BY id, provenance`},
		{TableGeneAlts, `SELECT id, provenance, confidence FROM gene_alts ORDER BY id, provenance`},
	} {
		out[q.name] = mustQuery(t, w, "alice", q.sql).Rows
	}
	return out
}

// TestInitialLoadParallelMatchesSerial is the determinism guard for the
// concurrent loader: fanning repository parse+wrap across workers must
// leave the public space identical to a serial load.
func TestInitialLoadParallelMatchesSerial(t *testing.T) {
	serial := newWarehouse(t)
	serial.Workers = 1
	statsS, err := serial.InitialLoad(twoRepos(t, 25))
	if err != nil {
		t.Fatal(err)
	}
	want := dumpPublic(t, serial)

	for _, workers := range []int{2, 4} {
		par := newWarehouse(t)
		par.Workers = workers
		statsP, err := par.InitialLoad(twoRepos(t, 25))
		if err != nil {
			t.Fatal(err)
		}
		if statsP != statsS {
			t.Fatalf("workers=%d: stats %+v != serial %+v", workers, statsP, statsS)
		}
		got := dumpPublic(t, par)
		for tbl, rows := range want {
			if !reflect.DeepEqual(rows, got[tbl]) {
				t.Fatalf("workers=%d: table %s differs from serial load", workers, tbl)
			}
		}
	}
}

// TestInitialLoadParallelErrors checks a malformed record degrades to the
// quarantine table instead of aborting the load, identically under serial
// and parallel wrapping.
func TestInitialLoadParallelErrors(t *testing.T) {
	for _, workers := range []int{1, 4} {
		good := sources.NewRepo("ok", sources.FormatCSV, sources.CapQueryable,
			sources.Generate(3, sources.GenOptions{N: 5}))
		// "XYZ" is not a DNA sequence, so wrapping this record always fails.
		bad := sources.NewRepo("broken", sources.FormatCSV, sources.CapQueryable,
			[]sources.Record{{ID: "BAD1", Version: 1, Organism: "o", Description: "d", Sequence: "XYZ"}})
		w := newWarehouse(t)
		w.Workers = workers
		if _, err := w.InitialLoad([]*sources.Repo{good, bad}); err != nil {
			t.Fatalf("workers=%d: load should degrade, got %v", workers, err)
		}
		if got := w.CountPublic(); got != len(good.Records()) {
			t.Errorf("workers=%d: public entities = %d, want %d", workers, got, len(good.Records()))
		}
		qs, err := w.Quarantined()
		if err != nil {
			t.Fatal(err)
		}
		if len(qs) != 1 || qs[0].ID != "BAD1" || qs[0].Source != "broken" || qs[0].Stage != "load" {
			t.Fatalf("workers=%d: quarantine = %+v, want one load-stage BAD1 row", workers, qs)
		}
		if qs[0].Reason == "" || qs[0].Payload == "" {
			t.Errorf("workers=%d: quarantine row missing reason/payload: %+v", workers, qs[0])
		}
		// The quarantine is part of the public space: plain SQL reaches it.
		res, err := w.Query("alice", `SELECT id, reason FROM quarantine`)
		if err != nil {
			t.Fatalf("workers=%d: querying quarantine: %v", workers, err)
		}
		if len(res.Rows) != 1 {
			t.Errorf("workers=%d: SELECT FROM quarantine returned %d rows", workers, len(res.Rows))
		}
	}
}

// TestConcurrentQueryDuringRefresh hammers the warehouse with readers while
// incremental maintenance runs — the race-detector guard for satellite
// concurrency in the public space.
func TestConcurrentQueryDuringRefresh(t *testing.T) {
	w := newWarehouse(t)
	repo := sources.NewRepo("src", sources.FormatCSV, sources.CapQueryable,
		sources.Generate(1, sources.GenOptions{N: 60}))
	if _, err := w.InitialLoad([]*sources.Repo{repo}); err != nil {
		t.Fatal(err)
	}
	det, err := etl.NewSnapshotDiffMonitor(repo)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := w.Query("alice", `SELECT COUNT(*) FROM fragments`); err != nil {
					t.Errorf("concurrent query: %v", err)
					return
				}
				if _, err := w.Query("alice", `SELECT id FROM genes ORDER BY id LIMIT 5`); err != nil {
					t.Errorf("concurrent query: %v", err)
					return
				}
			}
		}()
	}
	for round := 0; round < 8; round++ {
		repo.ApplyRandomUpdates(int64(round), 6)
		deltas, err := det.Poll(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if err := w.ApplyDeltas(deltas); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	assertMirrors(t, w, repo)
}
