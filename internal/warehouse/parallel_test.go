package warehouse

import (
	"reflect"
	"sync"
	"testing"

	"genalg/internal/db"
	"genalg/internal/etl"
	"genalg/internal/sources"
)

// dumpPublic reads the full ordered contents of the public space, used to
// compare warehouses loaded with different worker counts.
func dumpPublic(t *testing.T, w *Warehouse) map[string][]db.Row {
	t.Helper()
	out := make(map[string][]db.Row)
	for _, q := range []struct{ name, sql string }{
		{TableFragments, `SELECT id, organism, source, version, quality, nsources FROM fragments ORDER BY id`},
		{TableGenes, `SELECT id, organism, source, version, quality, nsources FROM genes ORDER BY id`},
		{TableFragmentAlts, `SELECT id, provenance, confidence FROM fragment_alts ORDER BY id, provenance`},
		{TableGeneAlts, `SELECT id, provenance, confidence FROM gene_alts ORDER BY id, provenance`},
	} {
		out[q.name] = mustQuery(t, w, "alice", q.sql).Rows
	}
	return out
}

// TestInitialLoadParallelMatchesSerial is the determinism guard for the
// concurrent loader: fanning repository parse+wrap across workers must
// leave the public space identical to a serial load.
func TestInitialLoadParallelMatchesSerial(t *testing.T) {
	serial := newWarehouse(t)
	serial.Workers = 1
	statsS, err := serial.InitialLoad(twoRepos(t, 25))
	if err != nil {
		t.Fatal(err)
	}
	want := dumpPublic(t, serial)

	for _, workers := range []int{2, 4} {
		par := newWarehouse(t)
		par.Workers = workers
		statsP, err := par.InitialLoad(twoRepos(t, 25))
		if err != nil {
			t.Fatal(err)
		}
		if statsP != statsS {
			t.Fatalf("workers=%d: stats %+v != serial %+v", workers, statsP, statsS)
		}
		got := dumpPublic(t, par)
		for tbl, rows := range want {
			if !reflect.DeepEqual(rows, got[tbl]) {
				t.Fatalf("workers=%d: table %s differs from serial load", workers, tbl)
			}
		}
	}
}

// TestInitialLoadParallelErrors checks a broken repository fails the load
// with the same (lowest-index) error a serial loop reports.
func TestInitialLoadParallelErrors(t *testing.T) {
	good := sources.NewRepo("ok", sources.FormatCSV, sources.CapQueryable,
		sources.Generate(3, sources.GenOptions{N: 5}))
	// "XYZ" is not a DNA sequence, so wrapping this repository always fails.
	bad := sources.NewRepo("broken", sources.FormatCSV, sources.CapQueryable,
		[]sources.Record{{ID: "BAD1", Version: 1, Organism: "o", Description: "d", Sequence: "XYZ"}})
	w := newWarehouse(t)
	w.Workers = 4
	_, errPar := w.InitialLoad([]*sources.Repo{good, bad})
	if errPar == nil {
		t.Fatal("expected parse error")
	}
	w2 := newWarehouse(t)
	w2.Workers = 1
	_, errSer := w2.InitialLoad([]*sources.Repo{good, bad})
	if errSer == nil || errSer.Error() != errPar.Error() {
		t.Fatalf("parallel error %q != serial error %q", errPar, errSer)
	}
}

// TestConcurrentQueryDuringRefresh hammers the warehouse with readers while
// incremental maintenance runs — the race-detector guard for satellite
// concurrency in the public space.
func TestConcurrentQueryDuringRefresh(t *testing.T) {
	w := newWarehouse(t)
	repo := sources.NewRepo("src", sources.FormatCSV, sources.CapQueryable,
		sources.Generate(1, sources.GenOptions{N: 60}))
	if _, err := w.InitialLoad([]*sources.Repo{repo}); err != nil {
		t.Fatal(err)
	}
	det, err := etl.NewSnapshotDiffMonitor(repo)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := w.Query("alice", `SELECT COUNT(*) FROM fragments`); err != nil {
					t.Errorf("concurrent query: %v", err)
					return
				}
				if _, err := w.Query("alice", `SELECT id FROM genes ORDER BY id LIMIT 5`); err != nil {
					t.Errorf("concurrent query: %v", err)
					return
				}
			}
		}()
	}
	for round := 0; round < 8; round++ {
		repo.ApplyRandomUpdates(int64(round), 6)
		deltas, err := det.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.ApplyDeltas(deltas); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	assertMirrors(t, w, repo)
}
