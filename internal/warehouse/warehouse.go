// Package warehouse implements the Unifying Database of the paper's
// Section 5: an integrated schema over an extensible DBMS, split into a
// read-only public space holding the restructured external data and
// per-user updatable spaces; the loader; incremental (self-maintainable)
// view maintenance versus full reload; archival of disappeared sources
// (C15); and manual/automatic refresh modes.
package warehouse

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"genalg/internal/adapter"
	"genalg/internal/db"
	"genalg/internal/etl"
	"genalg/internal/gdt"
	"genalg/internal/genops"
	"genalg/internal/obs"
	"genalg/internal/sources"
	"genalg/internal/sqlang"
	"genalg/internal/storage"
)

// Public-space table names of the integrated schema.
const (
	TableFragments    = "fragments"
	TableGenes        = "genes"
	TableFragmentAlts = "fragment_alts"
	TableGeneAlts     = "gene_alts"
	TableArchive      = "archive"
	TableQuarantine   = "quarantine"
)

// Warehouse is a Unifying Database instance.
type Warehouse struct {
	DB     *db.DB
	Engine *sqlang.Engine
	Kernel *genops.Kernel

	// Workers bounds the source-loading fan-out of InitialLoad/FullReload.
	// 0 means the parallel package default (GENALG_WORKERS or GOMAXPROCS);
	// 1 forces serial loading.
	Workers int

	mu sync.Mutex
	// owners maps user-space table names to their owning user.
	owners map[string]string
	// shared marks user tables readable by everyone.
	shared map[string]bool
	// pending holds deltas deferred under manual refresh.
	pending []etl.Delta
	// manualRefresh defers maintenance until Refresh is called.
	manualRefresh bool
	wrapper       *etl.Wrapper
}

// Open creates an in-memory warehouse with the integrated schema and the
// Genomics Algebra installed.
func Open(poolPages int, wrapper *etl.Wrapper) (*Warehouse, error) {
	d, err := db.OpenMemory(poolPages)
	if err != nil {
		return nil, err
	}
	k := genops.NewKernel()
	if err := adapter.Install(d, k); err != nil {
		return nil, err
	}
	w := &Warehouse{
		DB: d, Engine: sqlang.NewEngine(d), Kernel: k,
		owners: map[string]string{}, shared: map[string]bool{},
		wrapper: wrapper,
	}
	if err := w.createIntegratedSchema(); err != nil {
		return nil, err
	}
	// Snapshot-time gauge: quarantine depth is the warehouse's data-quality
	// backlog. GaugeFunc replacement semantics keep re-opened warehouses
	// from leaking stale closures.
	obs.Default.GaugeFunc("warehouse.quarantine.records", func() float64 {
		return float64(w.QuarantineCount())
	})
	return w, nil
}

func (w *Warehouse) createIntegratedSchema() error {
	schemas := []db.Schema{
		{
			Table: TableFragments,
			Columns: []db.Column{
				{Name: "id", Type: db.TString, NotNull: true},
				{Name: "organism", Type: db.TString},
				{Name: "description", Type: db.TString},
				{Name: "source", Type: db.TString},
				{Name: "version", Type: db.TInt},
				{Name: "quality", Type: db.TFloat},
				{Name: "confidence", Type: db.TFloat},
				{Name: "nsources", Type: db.TInt},
				{Name: "fragment", Type: db.TOpaque, UDTName: "dna"},
			},
		},
		{
			Table: TableGenes,
			Columns: []db.Column{
				{Name: "id", Type: db.TString, NotNull: true},
				{Name: "organism", Type: db.TString},
				{Name: "description", Type: db.TString},
				{Name: "source", Type: db.TString},
				{Name: "version", Type: db.TInt},
				{Name: "quality", Type: db.TFloat},
				{Name: "confidence", Type: db.TFloat},
				{Name: "nsources", Type: db.TInt},
				{Name: "gene", Type: db.TOpaque, UDTName: "gene"},
			},
		},
		{
			Table: TableFragmentAlts,
			Columns: []db.Column{
				{Name: "id", Type: db.TString, NotNull: true},
				{Name: "provenance", Type: db.TString},
				{Name: "confidence", Type: db.TFloat},
				{Name: "fragment", Type: db.TOpaque, UDTName: "dna"},
			},
		},
		{
			Table: TableGeneAlts,
			Columns: []db.Column{
				{Name: "id", Type: db.TString, NotNull: true},
				{Name: "provenance", Type: db.TString},
				{Name: "confidence", Type: db.TFloat},
				{Name: "gene", Type: db.TOpaque, UDTName: "gene"},
			},
		},
		{
			Table: TableArchive,
			Columns: []db.Column{
				{Name: "id", Type: db.TString, NotNull: true},
				{Name: "source", Type: db.TString},
				{Name: "archived_at", Type: db.TInt},
				{Name: "payload", Type: db.TBytes},
			},
		},
		{
			// Quarantine preserves malformed source records — reason plus
			// raw payload — instead of letting them poison a load (the
			// bdbms-style handling of partially trusted source data).
			Table: TableQuarantine,
			Columns: []db.Column{
				{Name: "id", Type: db.TString},
				{Name: "source", Type: db.TString},
				{Name: "stage", Type: db.TString},
				{Name: "reason", Type: db.TString},
				{Name: "payload", Type: db.TString},
				{Name: "tick", Type: db.TInt},
			},
		},
	}
	for _, s := range schemas {
		if _, err := w.DB.CreateTable(s); err != nil {
			return err
		}
	}
	// The integrated schema is indexed on id for incremental maintenance.
	for _, tname := range []string{TableFragments, TableGenes, TableFragmentAlts, TableGeneAlts} {
		tbl, _ := w.DB.Table(tname)
		if err := tbl.CreateBTreeIndex("id"); err != nil {
			return err
		}
	}
	return nil
}

// PublicTables lists the read-only public-space tables. The chromosomes
// and genomes tables exist once AssembleGenomes has run.
func PublicTables() []string {
	return []string{TableFragments, TableGenes, TableFragmentAlts, TableGeneAlts,
		TableArchive, TableQuarantine, TableChromosomes, TableGenomes, TableCrossRefs}
}

func isPublicTable(name string) bool {
	for _, t := range PublicTables() {
		if strings.EqualFold(t, name) {
			return true
		}
	}
	return false
}

// Query executes a statement as the given user, enforcing the paper's space
// rules: the public schema is read-only to users ("the schema containing
// the external data is read-only"); user tables are updatable by their
// owners and readable by everyone when shared.
func (w *Warehouse) Query(user, sql string) (*sqlang.Result, error) {
	return w.QueryCtx(context.Background(), user, sql)
}

// QueryCtx is Query under the caller's context: statements run inside the
// context's trace (a "sqlang.statement" span with per-operator children)
// when one is active.
func (w *Warehouse) QueryCtx(ctx context.Context, user, sql string) (*sqlang.Result, error) {
	stmt, err := sqlang.Parse(sql)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *sqlang.InsertStmt:
		if err := w.checkWritable(user, s.Table); err != nil {
			return nil, err
		}
	case *sqlang.DeleteStmt:
		if err := w.checkWritable(user, s.Table); err != nil {
			return nil, err
		}
	case *sqlang.UpdateStmt:
		if err := w.checkWritable(user, s.Table); err != nil {
			return nil, err
		}
	case *sqlang.CreateTableStmt:
		return nil, fmt.Errorf("warehouse: use CreateUserTable to create tables")
	case *sqlang.CreateIndexStmt:
		if isPublicTable(s.Table) {
			return nil, fmt.Errorf("warehouse: public table %s is managed by the warehouse", s.Table)
		}
		if err := w.checkWritable(user, s.Table); err != nil {
			return nil, err
		}
	case *sqlang.SelectStmt:
		// Reads: public tables always; user tables if owned or shared.
		for _, tr := range s.From {
			if err := w.checkReadable(user, tr.Name); err != nil {
				return nil, err
			}
		}
		for _, j := range s.Joins {
			if err := w.checkReadable(user, j.Table.Name); err != nil {
				return nil, err
			}
		}
	}
	return w.Engine.ExecStmtSQLCtx(ctx, stmt, sql)
}

func (w *Warehouse) checkWritable(user, table string) error {
	if isPublicTable(table) {
		return fmt.Errorf("warehouse: public table %s is read-only (loaded via ETL)", table)
	}
	w.mu.Lock()
	owner, exists := w.owners[table]
	w.mu.Unlock()
	if !exists {
		return fmt.Errorf("warehouse: unknown table %s", table)
	}
	if owner != user {
		return fmt.Errorf("warehouse: table %s belongs to %s, not %s", table, owner, user)
	}
	return nil
}

func (w *Warehouse) checkReadable(user, table string) error {
	if isPublicTable(table) {
		return nil
	}
	w.mu.Lock()
	owner, exists := w.owners[table]
	isShared := w.shared[table]
	w.mu.Unlock()
	if !exists {
		return fmt.Errorf("warehouse: unknown table %s", table)
	}
	if owner != user && !isShared {
		return fmt.Errorf("warehouse: table %s is private to %s", table, owner)
	}
	return nil
}

// CreateUserTable creates an updatable table in the user's space (C13:
// integration of self-generated data).
func (w *Warehouse) CreateUserTable(user string, schema db.Schema) error {
	if user == "" {
		return fmt.Errorf("warehouse: user required")
	}
	if isPublicTable(schema.Table) {
		return fmt.Errorf("warehouse: %s collides with a public table", schema.Table)
	}
	if _, err := w.DB.CreateTable(schema); err != nil {
		return err
	}
	w.mu.Lock()
	w.owners[schema.Table] = user
	w.mu.Unlock()
	return nil
}

// ShareTable marks a user table readable by all users ("does not exclude
// sharing of data between users").
func (w *Warehouse) ShareTable(user, table string) error {
	if err := w.checkWritable(user, table); err != nil {
		return err
	}
	w.mu.Lock()
	w.shared[table] = true
	w.mu.Unlock()
	return nil
}

// tableFor returns the public table pair for an entry's GDT kind.
func tableFor(v gdt.Value) (main, alts, col string, err error) {
	switch v.Kind() {
	case gdt.KindGene:
		return TableGenes, TableGeneAlts, "gene", nil
	case gdt.KindDNA:
		return TableFragments, TableFragmentAlts, "fragment", nil
	}
	return "", "", "", fmt.Errorf("warehouse: no public table for GDT kind %v", v.Kind())
}

// loadIntegrated inserts one integrated entity (primary row plus
// alternative rows).
func (w *Warehouse) loadIntegrated(ig etl.Integrated) error {
	v, ok := ig.Value.Value()
	if !ok {
		return fmt.Errorf("warehouse: integrated entity %s has no value", ig.ID)
	}
	main, altsTable, _, err := tableFor(v)
	if err != nil {
		return err
	}
	err = w.DB.ApplyDML(main, []db.Mutation{{Kind: db.MutInsert, Row: db.Row{
		ig.ID, ig.Organism, ig.Description, strings.Join(ig.Sources, "+"),
		int64(ig.Version), ig.Quality, ig.Value.Confidence(), int64(len(ig.Sources)), v,
	}}})
	if err != nil {
		return err
	}
	alts := ig.Value.Alternatives()
	muts := make([]db.Mutation, 0, len(alts))
	for _, alt := range alts {
		muts = append(muts, db.Mutation{Kind: db.MutInsert, Row: db.Row{ig.ID, alt.Provenance, alt.Confidence, alt.Value}})
	}
	return w.DB.ApplyDML(altsTable, muts)
}

// Load performs the initial (or full re-) load of integrated entities into
// the public space.
func (w *Warehouse) Load(entities []etl.Integrated) error {
	for _, ig := range entities {
		if err := w.loadIntegrated(ig); err != nil {
			return err
		}
	}
	return nil
}

// deleteEntity removes an entity's rows from both the primary and
// alternative tables, using the id indexes.
func (w *Warehouse) deleteEntity(id string) error {
	for _, pair := range [][2]string{{TableFragments, TableFragmentAlts}, {TableGenes, TableGeneAlts}} {
		for _, tname := range pair {
			tbl, _ := w.DB.Table(tname)
			rids, err := tbl.IndexLookup("id", id)
			if err != nil {
				return err
			}
			muts := make([]db.Mutation, 0, len(rids))
			for _, rid := range rids {
				muts = append(muts, db.Mutation{Kind: db.MutDelete, RID: rid})
			}
			// One statement per table: the entity's rows vanish atomically
			// for readers and as one WAL transaction on durable engines.
			if err := w.DB.ApplyDML(tname, muts); err != nil {
				return err
			}
		}
	}
	return nil
}

// CountPublic returns the number of primary entities in the public space.
func (w *Warehouse) CountPublic() int {
	n := 0
	for _, tname := range []string{TableFragments, TableGenes} {
		tbl, _ := w.DB.Table(tname)
		n += tbl.RowCount()
	}
	return n
}

// ArchiveSource preserves every public-space row that originated (possibly
// jointly) from the named source into the archive table (requirement C15:
// "the company's valuable knowledge should be preserved"). Rows remain in
// the public space; the archive holds packed copies with a logical
// timestamp.
func (w *Warehouse) ArchiveSource(source string, tick int64) (int, error) {
	archived := 0
	for _, spec := range []struct {
		table string
		vcol  int
	}{{TableFragments, 8}, {TableGenes, 8}} {
		tbl, _ := w.DB.Table(spec.table)
		type pendingRow struct {
			id      string
			payload []byte
		}
		var rows []pendingRow
		scanErr := tbl.Scan(func(rid storage.RID, row db.Row) bool {
			src, _ := row[3].(string)
			if !strings.Contains("+"+src+"+", "+"+source+"+") {
				return true
			}
			v := row[spec.vcol].(gdt.Value)
			rows = append(rows, pendingRow{id: row[0].(string), payload: v.Pack()})
			return true
		})
		if scanErr != nil {
			return archived, scanErr
		}
		muts := make([]db.Mutation, 0, len(rows))
		for _, pr := range rows {
			muts = append(muts, db.Mutation{Kind: db.MutInsert, Row: db.Row{pr.id, source, tick, pr.payload}})
		}
		if err := w.DB.ApplyDML(TableArchive, muts); err != nil {
			return archived, err
		}
		archived += len(rows)
	}
	return archived, nil
}

// RestoreFromArchive returns the packed GDT values archived for a source.
func (w *Warehouse) RestoreFromArchive(source string) ([]gdt.Value, error) {
	arch, _ := w.DB.Table(TableArchive)
	var out []gdt.Value
	var innerErr error
	err := arch.Scan(func(rid storage.RID, row db.Row) bool {
		if row[1] != source {
			return true
		}
		v, err := gdt.Unpack(row[3].([]byte))
		if err != nil {
			innerErr = err
			return false
		}
		out = append(out, v)
		return true
	})
	if innerErr != nil {
		return nil, innerErr
	}
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out, nil
}

// InitialLoad wraps, integrates, and loads the full contents of the given
// repositories — the warehouse bootstrap used by examples and benches. It
// degrades gracefully: malformed records are quarantined (queryable via
// SELECT * FROM quarantine) and a wholly failed source is skipped rather
// than aborting its siblings; an error is returned only when storage fails
// or every source failed. Use InitialLoadReport for the per-source detail
// and retry control.
//
// Parsing and wrapping are CPU-bound and independent per repository, so
// they fan out across w.Workers goroutines. Entries are concatenated in
// repository order before integration, so the result is identical to a
// serial load.
func (w *Warehouse) InitialLoad(repos []*sources.Repo) (etl.IntegrationStats, error) {
	return w.InitialLoadCtx(context.Background(), repos)
}

// InitialLoadCtx is InitialLoad under the caller's context: the bootstrap
// runs inside a "warehouse.initial_load" trace span with one child per
// source when the context carries a tracer.
func (w *Warehouse) InitialLoadCtx(ctx context.Context, repos []*sources.Repo) (etl.IntegrationStats, error) {
	rs := make([]sources.Repository, len(repos))
	for i, r := range repos {
		rs[i] = r
	}
	stats, rep, err := w.InitialLoadReport(ctx, rs, etl.RetryPolicy{})
	if err != nil {
		return stats, err
	}
	if len(rep.Failed) == len(repos) && len(repos) > 0 {
		return stats, fmt.Errorf("warehouse: every source failed, first: %w", rep.Failed[0].Err)
	}
	return stats, nil
}
