package warehouse

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"genalg/internal/etl"
	"genalg/internal/sources"
	"genalg/internal/trace"
)

func tracedCtx() (context.Context, *trace.Tracer) {
	tr := trace.New(trace.Sampling{Mode: trace.SampleAlways}, 16)
	//genalgvet:ignore ctxpass test helper fabricates the root context rather than threading one
	return trace.WithTracer(context.Background(), tr), tr
}

// TestInitialLoadTraced checks the bootstrap's span shape: a
// "warehouse.initial_load" root with one "warehouse.load.source" child per
// repository, and quarantine decisions visible as events on the noisy
// source's span.
func TestInitialLoadTraced(t *testing.T) {
	w := newWarehouse(t)
	ctx, tr := tracedCtx()

	if _, err := w.InitialLoadCtx(ctx, twoRepos(t, 30)); err != nil {
		t.Fatal(err)
	}
	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	spans := traces[0].Spans()
	if spans[0].Name != "warehouse.initial_load" {
		t.Fatalf("root span = %q, want warehouse.initial_load", spans[0].Name)
	}
	var perSource []*trace.Span
	for _, sp := range spans[1:] {
		if sp.Name == "warehouse.load.source" {
			perSource = append(perSource, sp)
			if sp.ParentID != spans[0].ID {
				t.Errorf("source span parent = %v, want the load root", sp.ParentID)
			}
		}
	}
	if len(perSource) != 2 {
		t.Fatalf("got %d per-source spans, want 2:\n%s", len(perSource), traces[0].RenderTree())
	}
	if w.QuarantineCount() > 0 {
		var sawQuarantine bool
		for _, sp := range perSource {
			for _, ev := range sp.Events {
				if strings.Contains(ev.Msg, "quarantined") {
					sawQuarantine = true
				}
			}
		}
		if !sawQuarantine {
			t.Errorf("%d records quarantined but no span event says so", w.QuarantineCount())
		}
	}
}

// TestApplyDeltasTraced checks maintenance spans: applied deltas run under
// a "warehouse.apply_deltas" span carrying the applied count.
func TestApplyDeltasTraced(t *testing.T) {
	w := newWarehouse(t)
	repo := sources.NewRepo("src", sources.FormatCSV, sources.CapQueryable,
		sources.Generate(7, sources.GenOptions{N: 10}))
	if _, err := w.InitialLoad([]*sources.Repo{repo}); err != nil {
		t.Fatal(err)
	}
	det, err := etl.NewSnapshotDiffMonitor(repo)
	if err != nil {
		t.Fatal(err)
	}
	repo.ApplyRandomUpdates(3, 8)
	deltas, err := det.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) == 0 {
		t.Fatal("no deltas to apply")
	}

	ctx, tr := tracedCtx()
	rep, err := w.ApplyDeltasReportCtx(ctx, deltas)
	if err != nil {
		t.Fatal(err)
	}
	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	root := traces[0].Root()
	if root.Name != "warehouse.apply_deltas" {
		t.Fatalf("root span = %q, want warehouse.apply_deltas", root.Name)
	}
	var appliedAttr string
	for _, a := range root.Attrs {
		if a.Key == "applied" {
			appliedAttr = a.Value
		}
	}
	if want := strconv.Itoa(rep.RecordsOK); appliedAttr != want {
		t.Errorf("applied attr = %q, report says %q", appliedAttr, want)
	}
}
