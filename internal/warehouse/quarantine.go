package warehouse

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"genalg/internal/db"
	"genalg/internal/etl"
	"genalg/internal/obs"
	"genalg/internal/parallel"
	"genalg/internal/sources"
	"genalg/internal/storage"
	"genalg/internal/trace"
)

// quarantineSeq orders quarantine rows when no delta tick is available
// (initial load) — negative so load-time rows sort before maintenance
// ticks.
var quarantineSeq atomic.Int64

// QuarantinedRecord is one malformed record preserved for inspection
// instead of poisoning the load: the raw payload plus the rejection reason.
type QuarantinedRecord struct {
	ID     string
	Source string
	Stage  string // "load" or "maintenance"
	Reason string
	// Payload is the record rendered in its source's format (the raw
	// evidence a curator needs).
	Payload string
	Tick    int64
}

// quarantine lands one bad record in the quarantine table.
func (w *Warehouse) quarantine(q QuarantinedRecord) error {
	if _, ok := w.DB.Table(TableQuarantine); !ok {
		return fmt.Errorf("warehouse: quarantine table missing")
	}
	return w.DB.ApplyDML(TableQuarantine, []db.Mutation{{
		Kind: db.MutInsert, Row: db.Row{q.ID, q.Source, q.Stage, q.Reason, q.Payload, q.Tick},
	}})
}

// QuarantineCount returns the number of quarantined records.
func (w *Warehouse) QuarantineCount() int {
	tbl, ok := w.DB.Table(TableQuarantine)
	if !ok {
		return 0
	}
	return tbl.RowCount()
}

// Quarantined returns the quarantine contents ordered by (source, id,
// tick). The table is also directly queryable: SELECT * FROM quarantine.
func (w *Warehouse) Quarantined() ([]QuarantinedRecord, error) {
	tbl, ok := w.DB.Table(TableQuarantine)
	if !ok {
		return nil, fmt.Errorf("warehouse: quarantine table missing")
	}
	var out []QuarantinedRecord
	err := tbl.Scan(func(rid storage.RID, row db.Row) bool {
		out = append(out, QuarantinedRecord{
			ID: row[0].(string), Source: row[1].(string), Stage: row[2].(string),
			Reason: row[3].(string), Payload: row[4].(string), Tick: row[5].(int64),
		})
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return out[i].Tick < out[j].Tick
	})
	return out, nil
}

// SourceFailure names a repository that could not be loaded at all.
type SourceFailure struct {
	Source string
	Err    error
}

// LoadReport describes how a resilient initial load degraded.
type LoadReport struct {
	// Sources is the number of repositories attempted.
	Sources int
	// Loaded is the number that contributed records.
	Loaded int
	// Quarantined counts malformed records preserved in the quarantine
	// table instead of aborting the load.
	Quarantined int
	// Retries counts fetch re-attempts across all sources.
	Retries int64
	// Failed lists sources skipped entirely (fetch or parse failure after
	// retries). Their data is absent, not partially loaded.
	Failed []SourceFailure
}

// InitialLoadReport wraps, integrates, and loads the full contents of the
// given repositories with graceful degradation: a failing source is
// skipped and reported rather than aborting the bootstrap, flaky fetches
// retry under policy, and malformed records land in the quarantine table
// with their raw payload and rejection reason. The returned error is
// reserved for warehouse-side (storage) failures.
//
// Parsing and wrapping fan out across w.Workers goroutines; entries are
// concatenated in repository order before integration, so the result is
// identical to a serial load of the surviving sources.
func (w *Warehouse) InitialLoadReport(ctx context.Context, repos []sources.Repository, policy etl.RetryPolicy) (etl.IntegrationStats, LoadReport, error) {
	defer obs.Default.Timer("warehouse.load.seconds")()
	ctx, sp := trace.Start(ctx, "warehouse.initial_load")
	sp.SetAttr("sources", len(repos))
	rep := LoadReport{Sources: len(repos)}
	jitter := newLoadJitter(policy.Seed)
	type loaded struct {
		entries []etl.Entry
		bad     []QuarantinedRecord
		retries int64
	}
	workers := parallel.Clamp(w.Workers, len(repos))
	perRepo, errs := parallel.MapAll(ctx, repos, workers,
		func(i int, r sources.Repository) (loaded, error) {
			sctx, ssp := trace.Start(ctx, "warehouse.load.source")
			ssp.SetAttr("source", r.Name())
			text, retries, err := etl.FetchWithRetry(sctx, r, policy, jitter)
			if err != nil {
				ssp.EndSpan(err)
				return loaded{retries: retries}, err
			}
			recs, err := sources.Parse(r.Format(), text)
			if err != nil {
				err = fmt.Errorf("warehouse: parsing %s: %w", r.Name(), err)
				ssp.EndSpan(err)
				return loaded{retries: retries}, err
			}
			es, werrs := w.wrapper.WrapAll(recs, r.Name())
			ld := loaded{entries: es, retries: retries}
			for _, werr := range werrs {
				ssp.Eventf("quarantined %s: %v", badRecordID(werr), werr)
				ld.bad = append(ld.bad, QuarantinedRecord{
					ID:      badRecordID(werr),
					Source:  r.Name(),
					Stage:   "load",
					Reason:  werr.Error(),
					Payload: payloadFor(r.Format(), recs, badRecordID(werr)),
					Tick:    -quarantineSeq.Add(1),
				})
			}
			ssp.SetAttr("entries", len(es))
			ssp.EndOK()
			return ld, nil
		})
	var entries []etl.Entry
	for i, ld := range perRepo {
		if errs[i] != nil {
			rep.Failed = append(rep.Failed, SourceFailure{Source: repos[i].Name(), Err: errs[i]})
			rep.Retries += ld.retries
			continue
		}
		rep.Loaded++
		rep.Retries += ld.retries
		entries = append(entries, ld.entries...)
		for _, q := range ld.bad {
			if err := w.quarantine(q); err != nil {
				sp.EndSpan(err)
				return etl.IntegrationStats{}, rep, err
			}
			rep.Quarantined++
		}
	}
	merged, stats := etl.Integrate(entries)
	if err := w.Load(merged); err != nil {
		sp.EndSpan(err)
		return stats, rep, err
	}
	obs.Default.Counter("warehouse.load.entities").Add(int64(len(merged)))
	obs.Default.Counter("warehouse.load.quarantined").Add(int64(rep.Quarantined))
	obs.Default.Counter("warehouse.load.source_failures").Add(int64(len(rep.Failed)))
	sp.SetAttr("loaded", rep.Loaded)
	sp.SetAttr("quarantined", rep.Quarantined)
	if len(rep.Failed) > 0 {
		sp.Eventf("degraded load: %d source(s) failed", len(rep.Failed))
	}
	sp.EndOK()
	return stats, rep, nil
}

// badRecordID digs the accession out of a wrap error ("etl: wrapping X:
// ..."); empty when the error carries none.
func badRecordID(err error) string {
	msg := err.Error()
	for _, prefix := range []string{"etl: wrapping ", "etl: classifying "} {
		if i := strings.Index(msg, prefix); i >= 0 {
			rest := msg[i+len(prefix):]
			if j := strings.IndexByte(rest, ':'); j > 0 {
				return rest[:j]
			}
		}
	}
	return ""
}

// payloadFor renders the named record in its source format as quarantine
// evidence; empty when the record cannot be found.
func payloadFor(f sources.Format, recs []sources.Record, id string) string {
	if id == "" {
		return ""
	}
	for _, r := range recs {
		if r.ID == id {
			return sources.Render(f, []sources.Record{r})
		}
	}
	return ""
}

// newLoadJitter builds the jitter stream for load-time retries; the
// warehouse keeps it deterministic per seed like the pipeline does.
func newLoadJitter(seed int64) func() float64 {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return rng.Float64()
	}
}
