// Package wire defines genalgd's client/server protocol: length-prefixed
// JSON frames over a TCP stream.
//
// A frame is a 4-byte big-endian payload length followed by that many
// bytes of JSON. Requests and responses alternate strictly — one request
// per frame, one response frame per request, in order — so the protocol
// needs no correlation machinery beyond an echo'd request ID (kept as a
// sanity check and for log lines).
//
// Operations:
//
//	hello          open a session; the response carries the server banner
//	exec           run one SQL statement, returning columns/rows/affected
//	prepare        parse a statement and cache it server-side; returns an id
//	exec_prepared  run a previously prepared statement by id
//	close_stmt     drop a prepared statement
//	ping           round-trip no-op (liveness, idle-keepalive)
//	quit           orderly session close; the server responds, then hangs up
//
// Values cross the wire in JSON's vocabulary: ints and floats as numbers
// (the client decodes with json.Number so int64 survives), strings and
// bools natively, NULL as null, and bytes/opaque genomic values as their
// rendered string form (the wire is a presentation boundary, not a
// storage format).
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// MaxFrame bounds a frame payload; a peer announcing more is broken (or
// hostile) and the connection is dropped rather than buffered.
const MaxFrame = 16 << 20

// Protocol op codes.
const (
	OpHello        = "hello"
	OpExec         = "exec"
	OpPrepare      = "prepare"
	OpExecPrepared = "exec_prepared"
	OpCloseStmt    = "close_stmt"
	OpPing         = "ping"
	OpQuit         = "quit"
)

// Request is one client frame.
type Request struct {
	ID  uint64 `json:"id"`
	Op  string `json:"op"`
	SQL string `json:"sql,omitempty"`
	// Stmt addresses a prepared statement (exec_prepared, close_stmt).
	Stmt uint64 `json:"stmt,omitempty"`
}

// Response is one server frame.
type Response struct {
	ID    uint64 `json:"id"`
	Error string `json:"error,omitempty"`
	// Draining marks an error as the server refusing new work during
	// shutdown (retryable elsewhere), as opposed to a statement failure.
	Draining bool `json:"draining,omitempty"`
	// Server is the banner returned by hello.
	Server string `json:"server,omitempty"`
	// Stmt is the prepared-statement id returned by prepare.
	Stmt     uint64   `json:"stmt,omitempty"`
	Cols     []string `json:"cols,omitempty"`
	Rows     [][]any  `json:"rows,omitempty"`
	Affected int      `json:"affected,omitempty"`
	Plan     string   `json:"plan,omitempty"`
}

// WriteFrame writes one length-prefixed payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed payload.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: peer announced %d-byte frame (limit %d)", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// WriteMessage JSON-encodes v as one frame.
func WriteMessage(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return WriteFrame(w, payload)
}

// ReadRequest reads and decodes one request frame.
func ReadRequest(r io.Reader) (*Request, error) {
	payload, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	var req Request
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("wire: bad request frame: %w", err)
	}
	return &req, nil
}
