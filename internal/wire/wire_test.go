package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("{}"), []byte(`{"op":"exec","sql":"SELECT 1"}`), {}}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame round-trip: got %q want %q", got, want)
		}
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("oversized frame announcement accepted")
	}
}

func TestReadFrameTornPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	torn := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(torn)); err == nil {
		t.Fatal("torn frame read as complete")
	} else if err != io.ErrUnexpectedEOF {
		// io.ReadFull reports the tear; any error is acceptable but it
		// must not be nil. Document the usual one.
		t.Logf("torn frame error: %v", err)
	}
}

func TestNumberValue(t *testing.T) {
	cases := []struct {
		in   string
		want any
	}{
		{"42", int64(42)},
		{"-9007199254740993", int64(-9007199254740993)}, // beyond float53
		{"3.25", 3.25},
		{"1e3", float64(1000)},
	}
	for _, c := range cases {
		resp, err := decodeResponse([]byte(`{"id":1,"rows":[[` + c.in + `]]}`))
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Rows[0][0]; got != c.want {
			t.Fatalf("numberValue(%s) = %v (%T), want %v (%T)", c.in, got, got, c.want, c.want)
		}
	}
}
