package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("{}"), []byte(`{"op":"exec","sql":"SELECT 1"}`), {}}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame round-trip: got %q want %q", got, want)
		}
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("oversized frame announcement accepted")
	}
}

func TestReadFrameTornPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	torn := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(torn)); err == nil {
		t.Fatal("torn frame read as complete")
	} else if err != io.ErrUnexpectedEOF {
		// io.ReadFull reports the tear; any error is acceptable but it
		// must not be nil. Document the usual one.
		t.Logf("torn frame error: %v", err)
	}
}

// stallServer accepts connections, answers the hello, then reads requests
// and never responds — the wedged-daemon shape the client deadline exists
// for. Returns the listen address.
func stallServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				req, err := ReadRequest(conn)
				if err != nil || req.Op != OpHello {
					return
				}
				if err := WriteMessage(conn, &Response{ID: req.ID, Server: "stall/1"}); err != nil {
					return
				}
				for {
					if _, err := ReadRequest(conn); err != nil {
						return
					}
					// Swallow the request; the response never comes.
				}
			}()
		}
	}()
	return ln.Addr().String()
}

func TestClientTimeoutBreaksConnection(t *testing.T) {
	addr := stallServer(t)
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.SetTimeout(50 * time.Millisecond)
	start := time.Now()
	_, err = c.Exec("SELECT 1")
	if err == nil {
		t.Fatal("Exec against a stalled server succeeded")
	}
	if !IsTimeout(err) {
		t.Fatalf("stalled Exec error %v is not a timeout", err)
	}
	if !IsTransport(err) {
		t.Fatalf("timeout error %v not classified as transport", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, want ~50ms", elapsed)
	}

	// The alternation is out of step: the client must refuse reuse.
	if c.Broken() == nil {
		t.Fatal("client not marked broken after timeout")
	}
	_, err = c.Exec("SELECT 1")
	var be *BrokenError
	if !errors.As(err, &be) {
		t.Fatalf("Exec on broken client = %v, want *BrokenError", err)
	}
	if !IsTimeout(err) {
		t.Fatalf("broken error %v should unwrap to the original timeout", err)
	}

	// A fresh dial to the same server works (the hello still answers).
	c2, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatalf("redial after timeout: %v", err)
	}
	c2.Close()
}

func TestClientTimeoutClearsForFastResponses(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			req, err := ReadRequest(conn)
			if err != nil {
				return
			}
			if err := WriteMessage(conn, &Response{ID: req.ID, Server: "fast/1"}); err != nil {
				return
			}
		}
	}()
	c, err := Dial(ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(250 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if err := c.Ping(); err != nil {
			t.Fatalf("ping %d under timeout: %v", i, err)
		}
	}
	c.SetTimeout(0)
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after clearing timeout: %v", err)
	}
}

func TestNumberValue(t *testing.T) {
	cases := []struct {
		in   string
		want any
	}{
		{"42", int64(42)},
		{"-9007199254740993", int64(-9007199254740993)}, // beyond float53
		{"3.25", 3.25},
		{"1e3", float64(1000)},
	}
	for _, c := range cases {
		resp, err := decodeResponse([]byte(`{"id":1,"rows":[[` + c.in + `]]}`))
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Rows[0][0]; got != c.want {
			t.Fatalf("numberValue(%s) = %v (%T), want %v (%T)", c.in, got, got, c.want, c.want)
		}
	}
}
