package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"
)

// Client is a thin genalgd session: one TCP connection, strictly
// alternating request/response. Safe for concurrent use; requests are
// serialized on the connection.
//
// Deadlines: SetTimeout bounds every subsequent round trip. Because the
// protocol is strictly alternating, a transport failure (timeout
// included) leaves an unconsumed response in flight, so the connection
// cannot be reused: the client marks itself broken and every later call
// fails with a *BrokenError wrapping the original cause. Callers redial.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	br      *bufio.Reader
	nextID  uint64
	timeout time.Duration
	broken  error
	// Banner is the server identification returned by hello.
	Banner string
}

// Result is the decoded outcome of a statement.
type Result struct {
	Cols     []string
	Rows     [][]any
	Affected int
	Plan     string
}

// ErrDraining reports the server refusing new statements during shutdown.
type ErrDraining struct{ msg string }

func (e *ErrDraining) Error() string { return e.msg }

// BrokenError reports a client whose connection is no longer usable: an
// earlier round trip failed at the transport level (timeout, reset, EOF),
// leaving the request/response alternation out of step. Cause is the
// failure that broke it.
type BrokenError struct{ Cause error }

func (e *BrokenError) Error() string { return fmt.Sprintf("wire: connection broken: %v", e.Cause) }

// Unwrap exposes the breaking failure to errors.Is/As.
func (e *BrokenError) Unwrap() error { return e.Cause }

// IsTimeout reports whether err is (or was caused by) a request deadline
// expiring — the per-request timeout set with SetTimeout, or a dial
// timeout.
func IsTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// IsTransport reports whether err is a connection-level failure (dial
// refusal, timeout, reset, EOF, or a previously broken client) rather
// than a statement error the server answered with. Load drivers use this
// split to tell an unreachable daemon from a rejected statement.
func IsTransport(err error) bool {
	if err == nil {
		return false
	}
	var be *BrokenError
	var ne net.Error
	var oe *net.OpError
	return errors.As(err, &be) || errors.As(err, &ne) || errors.As(err, &oe) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed)
}

// Dial connects to a genalgd server and performs the hello exchange.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	// The hello exchange is bounded by the dial timeout too — an accepted
	// connection whose greeting never arrives should not hang the caller.
	c := &Client{conn: conn, br: bufio.NewReader(conn), timeout: timeout}
	resp, err := c.roundTrip(&Request{Op: OpHello})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: hello: %w", err)
	}
	c.Banner = resp.Server
	c.SetTimeout(0)
	return c, nil
}

// Exec runs one SQL statement on the server.
func (c *Client) Exec(sql string) (*Result, error) {
	resp, err := c.roundTrip(&Request{Op: OpExec, SQL: sql})
	if err != nil {
		return nil, err
	}
	return result(resp), nil
}

// Prepare parses sql server-side, returning a statement handle.
func (c *Client) Prepare(sql string) (uint64, error) {
	resp, err := c.roundTrip(&Request{Op: OpPrepare, SQL: sql})
	if err != nil {
		return 0, err
	}
	return resp.Stmt, nil
}

// ExecPrepared runs a prepared statement by handle.
func (c *Client) ExecPrepared(stmt uint64) (*Result, error) {
	resp, err := c.roundTrip(&Request{Op: OpExecPrepared, Stmt: stmt})
	if err != nil {
		return nil, err
	}
	return result(resp), nil
}

// CloseStmt drops a prepared statement.
func (c *Client) CloseStmt(stmt uint64) error {
	_, err := c.roundTrip(&Request{Op: OpCloseStmt, Stmt: stmt})
	return err
}

// Ping round-trips a no-op.
func (c *Client) Ping() error {
	_, err := c.roundTrip(&Request{Op: OpPing})
	return err
}

// SetTimeout bounds each subsequent round trip (write + read) by d; zero
// restores blocking reads. A round trip that exceeds the deadline fails
// with a timeout error (IsTimeout) and breaks the client — the stalled
// response could still arrive and desynchronise the frame stream, so the
// connection must be redialed.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// Broken returns the transport failure that poisoned this client, or nil
// while it is still usable.
func (c *Client) Broken() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// Close sends quit (when the connection is still healthy) and closes it.
// The goodbye exchange is bounded by a short deadline of its own — a
// wedged server must not hang Close.
func (c *Client) Close() error {
	if c.Broken() == nil {
		c.mu.Lock()
		if c.timeout <= 0 || c.timeout > time.Second {
			c.timeout = time.Second
		}
		c.mu.Unlock()
		_, _ = c.roundTrip(&Request{Op: OpQuit})
	}
	return c.conn.Close()
}

func result(resp *Response) *Result {
	return &Result{Cols: resp.Cols, Rows: resp.Rows, Affected: resp.Affected, Plan: resp.Plan}
}

func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		return nil, &BrokenError{Cause: c.broken}
	}
	var deadline time.Time
	if c.timeout > 0 {
		deadline = time.Now().Add(c.timeout)
	}
	//genalgvet:ignore lockio c.mu is the request serializer: the strictly alternating protocol requires the deadline set, write, and read to happen as one critical section per round trip
	if err := c.conn.SetDeadline(deadline); err != nil {
		c.broken = err
		return nil, err
	}
	c.nextID++
	req.ID = c.nextID
	//genalgvet:ignore lockorder c.mu is the request serializer, held across the round trip by design: one in-flight request per client, bounded by the deadline armed above
	if err := WriteMessage(c.conn, req); err != nil {
		c.broken = err
		return nil, err
	}
	//genalgvet:ignore lockorder c.mu is the request serializer: the read half of the round trip runs under the same deadline-bounded critical section
	payload, err := ReadFrame(c.br)
	if err != nil {
		// The response (if any) is now unrecoverable: a late frame would
		// answer this request while the next call expects its own.
		c.broken = err
		return nil, err
	}
	resp, err := decodeResponse(payload)
	if err != nil {
		return nil, err
	}
	// Server errors surface before the ID sanity check: rejections sent
	// before any request was read (connection limit) carry ID 0.
	if resp.Error != "" {
		if resp.Draining {
			return nil, &ErrDraining{msg: resp.Error}
		}
		return nil, fmt.Errorf("%s", resp.Error)
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("wire: response id %d for request %d", resp.ID, req.ID)
	}
	return resp, nil
}

// decodeResponse unmarshals with json.Number so int64 row values survive
// the trip (plain Unmarshal would flatten them to float64), then rewrites
// numbers to int64 where exact.
func decodeResponse(payload []byte) (*Response, error) {
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.UseNumber()
	var resp Response
	if err := dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("wire: bad response frame: %w", err)
	}
	for _, row := range resp.Rows {
		for i, v := range row {
			if num, ok := v.(json.Number); ok {
				row[i] = numberValue(num)
			}
		}
	}
	return &resp, nil
}

func numberValue(num json.Number) any {
	s := num.String()
	if !strings.ContainsAny(s, ".eE") {
		if iv, err := num.Int64(); err == nil {
			return iv
		}
	}
	if fv, err := num.Float64(); err == nil {
		return fv
	}
	return s
}
