package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// Client is a thin genalgd session: one TCP connection, strictly
// alternating request/response. Safe for concurrent use; requests are
// serialized on the connection.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	br     *bufio.Reader
	nextID uint64
	// Banner is the server identification returned by hello.
	Banner string
}

// Result is the decoded outcome of a statement.
type Result struct {
	Cols     []string
	Rows     [][]any
	Affected int
	Plan     string
}

// ErrDraining reports the server refusing new statements during shutdown.
type ErrDraining struct{ msg string }

func (e *ErrDraining) Error() string { return e.msg }

// Dial connects to a genalgd server and performs the hello exchange.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, br: bufio.NewReader(conn)}
	resp, err := c.roundTrip(&Request{Op: OpHello})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: hello: %w", err)
	}
	c.Banner = resp.Server
	return c, nil
}

// Exec runs one SQL statement on the server.
func (c *Client) Exec(sql string) (*Result, error) {
	resp, err := c.roundTrip(&Request{Op: OpExec, SQL: sql})
	if err != nil {
		return nil, err
	}
	return result(resp), nil
}

// Prepare parses sql server-side, returning a statement handle.
func (c *Client) Prepare(sql string) (uint64, error) {
	resp, err := c.roundTrip(&Request{Op: OpPrepare, SQL: sql})
	if err != nil {
		return 0, err
	}
	return resp.Stmt, nil
}

// ExecPrepared runs a prepared statement by handle.
func (c *Client) ExecPrepared(stmt uint64) (*Result, error) {
	resp, err := c.roundTrip(&Request{Op: OpExecPrepared, Stmt: stmt})
	if err != nil {
		return nil, err
	}
	return result(resp), nil
}

// CloseStmt drops a prepared statement.
func (c *Client) CloseStmt(stmt uint64) error {
	_, err := c.roundTrip(&Request{Op: OpCloseStmt, Stmt: stmt})
	return err
}

// Ping round-trips a no-op.
func (c *Client) Ping() error {
	_, err := c.roundTrip(&Request{Op: OpPing})
	return err
}

// Close sends quit and closes the connection.
func (c *Client) Close() error {
	_, _ = c.roundTrip(&Request{Op: OpQuit})
	return c.conn.Close()
}

func result(resp *Response) *Result {
	return &Result{Cols: resp.Cols, Rows: resp.Rows, Affected: resp.Affected, Plan: resp.Plan}
}

func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	req.ID = c.nextID
	if err := WriteMessage(c.conn, req); err != nil {
		return nil, err
	}
	payload, err := ReadFrame(c.br)
	if err != nil {
		return nil, err
	}
	resp, err := decodeResponse(payload)
	if err != nil {
		return nil, err
	}
	// Server errors surface before the ID sanity check: rejections sent
	// before any request was read (connection limit) carry ID 0.
	if resp.Error != "" {
		if resp.Draining {
			return nil, &ErrDraining{msg: resp.Error}
		}
		return nil, fmt.Errorf("%s", resp.Error)
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("wire: response id %d for request %d", resp.ID, req.ID)
	}
	return resp, nil
}

// decodeResponse unmarshals with json.Number so int64 row values survive
// the trip (plain Unmarshal would flatten them to float64), then rewrites
// numbers to int64 where exact.
func decodeResponse(payload []byte) (*Response, error) {
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.UseNumber()
	var resp Response
	if err := dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("wire: bad response frame: %w", err)
	}
	for _, row := range resp.Rows {
		for i, v := range row {
			if num, ok := v.(json.Number); ok {
				row[i] = numberValue(num)
			}
		}
	}
	return &resp, nil
}

func numberValue(num json.Number) any {
	s := num.String()
	if !strings.ContainsAny(s, ".eE") {
		if iv, err := num.Int64(); err == nil {
			return iv
		}
	}
	if fv, err := num.Float64(); err == nil {
		return fv
	}
	return s
}
