// Package adapter implements the DBMS-specific adapter of the paper's
// Figure 3: "the only component that has knowledge about the types and
// operations of the Genomics Algebra as well as how they are implemented
// and stored in the DBMS" (Section 5.1). Install plugs the GDTs into the
// engine's opaque-UDT mechanism and exposes every kernel-algebra operation
// as an external function callable from SQL (Section 6.3), plus literal
// constructor functions so GDT values can be written in queries.
package adapter

import (
	"fmt"
	"strconv"
	"strings"

	"genalg/internal/core"
	"genalg/internal/db"
	"genalg/internal/gdt"
	"genalg/internal/genops"
	"genalg/internal/seq"
)

// Install registers the Genomics Algebra with the engine: one opaque UDT
// per GDT kind, one external function per algebra operation (dispatching on
// runtime argument sorts), and the GDT constructor functions.
func Install(d *db.DB, k *genops.Kernel) error {
	if err := registerUDTs(d); err != nil {
		return err
	}
	if err := registerOps(d, k); err != nil {
		return err
	}
	return registerConstructors(d)
}

func packValue(v any) ([]byte, error) {
	gv, ok := v.(gdt.Value)
	if !ok {
		return nil, fmt.Errorf("adapter: %T is not a GDT value", v)
	}
	return gv.Pack(), nil
}

func udtFor(kind gdt.Kind, check func(any) bool, extract func(any) (seq.NucSeq, bool)) db.UDT {
	return db.UDT{
		Name: kind.String(),
		Pack: packValue,
		Unpack: func(buf []byte) (any, error) {
			v, err := gdt.Unpack(buf)
			if err != nil {
				return nil, err
			}
			if v.Kind() != kind {
				return nil, fmt.Errorf("adapter: column stores %s, buffer holds %s", kind, v.Kind())
			}
			return v, nil
		},
		Check:      check,
		ExtractSeq: extract,
	}
}

func registerUDTs(d *db.DB) error {
	udts := []db.UDT{
		udtFor(gdt.KindNucleotide,
			func(v any) bool { _, ok := v.(gdt.Nucleotide); return ok }, nil),
		udtFor(gdt.KindDNA,
			func(v any) bool { _, ok := v.(gdt.DNA); return ok },
			func(v any) (seq.NucSeq, bool) {
				x, ok := v.(gdt.DNA)
				if !ok {
					return seq.NucSeq{}, false
				}
				return x.Seq, true
			}),
		udtFor(gdt.KindRNA,
			func(v any) bool { _, ok := v.(gdt.RNA); return ok },
			func(v any) (seq.NucSeq, bool) {
				x, ok := v.(gdt.RNA)
				if !ok {
					return seq.NucSeq{}, false
				}
				return x.Seq, true
			}),
		udtFor(gdt.KindPrimaryTranscript,
			func(v any) bool { _, ok := v.(gdt.PrimaryTranscript); return ok },
			func(v any) (seq.NucSeq, bool) {
				x, ok := v.(gdt.PrimaryTranscript)
				if !ok {
					return seq.NucSeq{}, false
				}
				return x.Seq, true
			}),
		udtFor(gdt.KindMRNA,
			func(v any) bool { _, ok := v.(gdt.MRNA); return ok },
			func(v any) (seq.NucSeq, bool) {
				x, ok := v.(gdt.MRNA)
				if !ok {
					return seq.NucSeq{}, false
				}
				return x.Seq, true
			}),
		udtFor(gdt.KindProtein,
			func(v any) bool { _, ok := v.(gdt.Protein); return ok }, nil),
		udtFor(gdt.KindGene,
			func(v any) bool { _, ok := v.(gdt.Gene); return ok },
			func(v any) (seq.NucSeq, bool) {
				x, ok := v.(gdt.Gene)
				if !ok {
					return seq.NucSeq{}, false
				}
				return x.Seq, true
			}),
		udtFor(gdt.KindChromosome,
			func(v any) bool { _, ok := v.(gdt.Chromosome); return ok },
			func(v any) (seq.NucSeq, bool) {
				x, ok := v.(gdt.Chromosome)
				if !ok {
					return seq.NucSeq{}, false
				}
				return x.Seq, true
			}),
		udtFor(gdt.KindGenome,
			func(v any) bool { _, ok := v.(gdt.Genome); return ok }, nil),
		udtFor(gdt.KindAnnotation,
			func(v any) bool { _, ok := v.(gdt.Annotation); return ok }, nil),
	}
	for _, u := range udts {
		if err := d.UDTs.Register(u); err != nil {
			return err
		}
	}
	return nil
}

// sortOfRuntime infers the algebra sort of a runtime value coming from the
// SQL executor.
func sortOfRuntime(v any) (core.Sort, error) {
	switch x := v.(type) {
	case gdt.Value:
		return genops.SortOfValue(x), nil
	case int64:
		return core.SortInt, nil
	case float64:
		return core.SortFloat, nil
	case string:
		return core.SortString, nil
	case bool:
		return core.SortBool, nil
	}
	return "", fmt.Errorf("adapter: value of type %T has no algebra sort", v)
}

// registerOps exposes every operation in the kernel signature as an
// external function. Overloads are resolved per call from runtime argument
// sorts. Planner metadata (selectivity, cost, the k-mer index hint for
// contains) is carried over from the signature.
func registerOps(d *db.DB, k *genops.Kernel) error {
	byName := map[string][]core.OpSig{}
	for _, op := range k.Sig.Ops() {
		byName[op.Name] = append(byName[op.Name], op)
	}
	for name, overloads := range byName {
		name, overloads := name, overloads
		// Aggregate metadata: use the max cost and min selectivity among
		// overloads (conservative for the planner).
		var sel, cost float64
		for i, op := range overloads {
			if i == 0 || op.Selectivity < sel {
				sel = op.Selectivity
			}
			if op.Cost > cost {
				cost = op.Cost
			}
		}
		hint := ""
		if name == "contains" {
			hint = "kmer"
		}
		nargs := 0
		uniformArity := true
		for i, op := range overloads {
			if i == 0 {
				nargs = len(op.Args)
			} else if nargs != len(op.Args) {
				uniformArity = false
			}
		}
		if !uniformArity {
			nargs = 0 // disable parse-time arity checking
		}
		err := d.Funcs.Register(db.ExternalFunc{
			Name:        name,
			NArgs:       nargs,
			Selectivity: sel,
			Cost:        cost,
			IndexHint:   hint,
			Fn: func(args []any) (any, error) {
				sorts := make([]core.Sort, len(args))
				for i, a := range args {
					s, err := sortOfRuntime(a)
					if err != nil {
						return nil, fmt.Errorf("adapter: %s argument %d: %w", name, i, err)
					}
					sorts[i] = s
				}
				return k.Alg.Call(name, sorts, args)
			},
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// registerConstructors adds literal constructors so SQL statements can
// build GDT values: dna(id, letters), rna(id, letters), protein(id,
// letters), gene(id, symbol, organism, letters, exonSpec), annotation(id,
// target, start, end, author, text).
//
// exonSpec is a comma-separated list of start-end pairs, e.g. "0-6,14-20".
func registerConstructors(d *db.DB) error {
	ctors := []db.ExternalFunc{
		{
			Name: "dna", NArgs: 2,
			Fn: func(args []any) (any, error) {
				id, ok1 := args[0].(string)
				letters, ok2 := args[1].(string)
				if !ok1 || !ok2 {
					return nil, fmt.Errorf("adapter: dna(id string, letters string)")
				}
				return gdt.NewDNA(id, letters)
			},
		},
		{
			Name: "rna", NArgs: 2,
			Fn: func(args []any) (any, error) {
				id, ok1 := args[0].(string)
				letters, ok2 := args[1].(string)
				if !ok1 || !ok2 {
					return nil, fmt.Errorf("adapter: rna(id string, letters string)")
				}
				ns, err := seq.NewNucSeq(seq.AlphaRNA, letters)
				if err != nil {
					return nil, err
				}
				return gdt.RNA{ID: id, Seq: ns}, nil
			},
		},
		{
			Name: "protein", NArgs: 2,
			Fn: func(args []any) (any, error) {
				id, ok1 := args[0].(string)
				letters, ok2 := args[1].(string)
				if !ok1 || !ok2 {
					return nil, fmt.Errorf("adapter: protein(id string, letters string)")
				}
				ps, err := seq.NewProtSeq(letters)
				if err != nil {
					return nil, err
				}
				return gdt.Protein{ID: id, Seq: ps}, nil
			},
		},
		{
			Name: "gene", NArgs: 5,
			Fn: func(args []any) (any, error) {
				id, ok1 := args[0].(string)
				symbol, ok2 := args[1].(string)
				organism, ok3 := args[2].(string)
				letters, ok4 := args[3].(string)
				exonSpec, ok5 := args[4].(string)
				if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 {
					return nil, fmt.Errorf("adapter: gene(id, symbol, organism, letters, exonSpec string)")
				}
				ns, err := seq.NewNucSeq(seq.AlphaDNA, letters)
				if err != nil {
					return nil, err
				}
				exons, err := ParseExonSpec(exonSpec)
				if err != nil {
					return nil, err
				}
				g := gdt.Gene{ID: id, Symbol: symbol, Organism: organism, Seq: ns, Exons: exons}
				if err := g.Validate(); err != nil {
					return nil, err
				}
				return g, nil
			},
		},
		{
			Name: "annotation", NArgs: 6,
			Fn: func(args []any) (any, error) {
				id, ok1 := args[0].(string)
				target, ok2 := args[1].(string)
				start, ok3 := args[2].(int64)
				end, ok4 := args[3].(int64)
				author, ok5 := args[4].(string)
				text, ok6 := args[5].(string)
				if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 || !ok6 {
					return nil, fmt.Errorf("adapter: annotation(id, target string, start, end int, author, text string)")
				}
				return gdt.Annotation{
					ID: id, TargetID: target,
					Span:   gdt.Interval{Start: int(start), End: int(end)},
					Author: author, Text: text,
				}, nil
			},
		},
	}
	for _, c := range ctors {
		if err := d.Funcs.Register(c); err != nil {
			return err
		}
	}
	return nil
}

// ParseExonSpec parses "0-6,14-20" into intervals.
func ParseExonSpec(spec string) ([]gdt.Interval, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []gdt.Interval
	for _, part := range strings.Split(spec, ",") {
		bounds := strings.SplitN(strings.TrimSpace(part), "-", 2)
		if len(bounds) != 2 {
			return nil, fmt.Errorf("adapter: bad exon span %q (want start-end)", part)
		}
		start, err := strconv.Atoi(strings.TrimSpace(bounds[0]))
		if err != nil {
			return nil, fmt.Errorf("adapter: bad exon start in %q", part)
		}
		end, err := strconv.Atoi(strings.TrimSpace(bounds[1]))
		if err != nil {
			return nil, fmt.Errorf("adapter: bad exon end in %q", part)
		}
		out = append(out, gdt.Interval{Start: start, End: end})
	}
	return out, nil
}

// FormatExonSpec renders intervals back into the constructor syntax.
func FormatExonSpec(exons []gdt.Interval) string {
	parts := make([]string, len(exons))
	for i, e := range exons {
		parts[i] = fmt.Sprintf("%d-%d", e.Start, e.End)
	}
	return strings.Join(parts, ",")
}
