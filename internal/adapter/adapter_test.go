package adapter

import (
	"strings"
	"testing"

	"genalg/internal/core"
	"genalg/internal/seq"

	"genalg/internal/db"
	"genalg/internal/gdt"
	"genalg/internal/genops"
	"genalg/internal/sqlang"
)

func installed(t testing.TB) *sqlang.Engine {
	d, err := db.OpenMemory(1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := Install(d, genops.NewKernel()); err != nil {
		t.Fatal(err)
	}
	return sqlang.NewEngine(d)
}

func mustExec(t testing.TB, e *sqlang.Engine, sql string) *sqlang.Result {
	t.Helper()
	r, err := e.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return r
}

func TestInstallRegistersAllGDTs(t *testing.T) {
	d, _ := db.OpenMemory(64)
	if err := Install(d, genops.NewKernel()); err != nil {
		t.Fatal(err)
	}
	want := []string{"annotation", "chromosome", "dna", "gene", "genome",
		"mrna", "nucleotide", "primarytranscript", "protein", "rna"}
	got := d.UDTs.Names()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("UDTs = %v", got)
	}
	// Algebra ops are callable functions.
	for _, fn := range []string{"transcribe", "splice", "translate", "decode", "contains", "gccontent", "length"} {
		if _, ok := d.Funcs.Get(fn); !ok {
			t.Errorf("function %q not registered", fn)
		}
	}
	// contains carries the k-mer index hint.
	f, _ := d.Funcs.Get("contains")
	if f.IndexHint != "kmer" || f.Selectivity == 0 {
		t.Errorf("contains metadata = %+v", f)
	}
}

func TestPaperPipelineThroughSQL(t *testing.T) {
	// Store a gene, then run the central dogma inside a query:
	// SELECT proteinseq(translate(splice(transcribe(g)))) FROM genes.
	e := installed(t)
	mustExec(t, e, `CREATE TABLE genes (id string, g gene)`)
	geneSeq := "ATGAAA" + "GTCCCTAG" + "CCCGGG" + "GTTTTTAG" + "TTTTAA"
	mustExec(t, e, `INSERT INTO genes VALUES ('G1', gene('G1', 'TST1', 'synthetica', '`+geneSeq+`', '0-6,14-20,28-34'))`)
	r := mustExec(t, e, `SELECT id, proteinseq(translate(splice(transcribe(g)))) FROM genes`)
	if len(r.Rows) != 1 || r.Rows[0][1] != "MKPGF" {
		t.Errorf("pipeline rows = %v", r.Rows)
	}
}

func TestOverloadedLengthThroughSQL(t *testing.T) {
	e := installed(t)
	mustExec(t, e, `CREATE TABLE frags (id string, f dna)`)
	mustExec(t, e, `INSERT INTO frags VALUES ('a', dna('a', 'ACGTACGT'))`)
	r := mustExec(t, e, `SELECT length(f) FROM frags`)
	if r.Rows[0][0] != int64(8) {
		t.Errorf("length = %v", r.Rows[0])
	}
	// protein overload of the same function name.
	mustExec(t, e, `CREATE TABLE prots (id string, p protein)`)
	mustExec(t, e, `INSERT INTO prots VALUES ('p1', protein('p1', 'MKV'))`)
	r = mustExec(t, e, `SELECT length(p) FROM prots`)
	if r.Rows[0][0] != int64(3) {
		t.Errorf("protein length = %v", r.Rows[0])
	}
}

func TestConstructorValidation(t *testing.T) {
	e := installed(t)
	mustExec(t, e, `CREATE TABLE frags (id string, f dna)`)
	cases := []string{
		`INSERT INTO frags VALUES ('x', dna('x', 'ACGU'))`,    // U in DNA
		`INSERT INTO frags VALUES ('x', dna('x', 'NNNN'))`,    // bad letters
		`INSERT INTO frags VALUES ('x', rna('x', 'ACGU'))`,    // wrong UDT for column
		`INSERT INTO frags VALUES ('x', protein('x', 'MKB'))`, // bad amino acid
		`INSERT INTO frags VALUES ('x', dna('x'))`,            // arity
	}
	for _, c := range cases {
		if _, err := e.Exec(c); err == nil {
			t.Errorf("Exec(%q) succeeded", c)
		}
	}
}

func TestGeneConstructorExonValidation(t *testing.T) {
	e := installed(t)
	mustExec(t, e, `CREATE TABLE genes (id string, g gene)`)
	if _, err := e.Exec(`INSERT INTO genes VALUES ('g', gene('g', 'S', 'o', 'ACGT', '0-100'))`); err == nil {
		t.Error("out-of-bounds exon accepted")
	}
	if _, err := e.Exec(`INSERT INTO genes VALUES ('g', gene('g', 'S', 'o', 'ACGT', 'zero-4'))`); err == nil {
		t.Error("malformed exon spec accepted")
	}
}

func TestParseExonSpec(t *testing.T) {
	exons, err := ParseExonSpec("0-6, 14-20 ,28-34")
	if err != nil || len(exons) != 3 || exons[1] != (gdt.Interval{Start: 14, End: 20}) {
		t.Errorf("ParseExonSpec = %v, %v", exons, err)
	}
	if got, _ := ParseExonSpec(""); got != nil {
		t.Errorf("empty spec = %v", got)
	}
	for _, bad := range []string{"5", "a-b", "1-2-3x"} {
		if _, err := ParseExonSpec(bad); err == nil && bad != "1-2-3x" {
			t.Errorf("ParseExonSpec(%q) succeeded", bad)
		}
	}
	if FormatExonSpec(exons) != "0-6,14-20,28-34" {
		t.Errorf("FormatExonSpec = %q", FormatExonSpec(exons))
	}
}

func TestUnpackKindMismatch(t *testing.T) {
	d, _ := db.OpenMemory(64)
	if err := Install(d, genops.NewKernel()); err != nil {
		t.Fatal(err)
	}
	udt, _ := d.UDTs.Get("dna")
	// Feeding a packed protein into the dna unpack must fail.
	buf := gdt.Protein{ID: "p"}.Pack()
	if _, err := udt.Unpack(buf); err == nil {
		t.Error("dna UDT accepted a protein buffer")
	}
}

func TestGenomicIndexWithAdapterContains(t *testing.T) {
	e := installed(t)
	mustExec(t, e, `CREATE TABLE frags (id string, f dna)`)
	mustExec(t, e, `INSERT INTO frags VALUES ('hit', dna('hit', 'AAAATTGCCATAGGAAAA'))`)
	mustExec(t, e, `INSERT INTO frags VALUES ('miss', dna('miss', 'CCCCCCCCCCCCCCCCCC'))`)
	mustExec(t, e, `CREATE GENOMIC INDEX ON frags (f) USING 8`)
	exp := mustExec(t, e, `EXPLAIN SELECT id FROM frags WHERE contains(f, 'ATTGCCATAGG')`)
	if !strings.Contains(exp.Plan, "genomic index") {
		t.Errorf("plan = %q", exp.Plan)
	}
	r := mustExec(t, e, `SELECT id FROM frags WHERE contains(f, 'ATTGCCATAGG')`)
	if len(r.Rows) != 1 || r.Rows[0][0] != "hit" {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestResemblesThroughSQL(t *testing.T) {
	e := installed(t)
	mustExec(t, e, `CREATE TABLE a (id string, f dna)`)
	mustExec(t, e, `INSERT INTO a VALUES
		('x', dna('x', 'ACGTACGTACGTACGTACGT')),
		('y', dna('y', 'ACGTACGTACGTACGTACGT')),
		('z', dna('z', 'CCCCCCCCCCGGGGGGGGGG'))`)
	r := mustExec(t, e, `SELECT l.id, r.id FROM a l, a r WHERE resembles(l.f, r.f, 40) AND l.id < r.id`)
	if len(r.Rows) != 1 || r.Rows[0][0] != "x" || r.Rows[0][1] != "y" {
		t.Errorf("resembles rows = %v", r.Rows)
	}
}

func TestEveryUDTRoundTripsAndExtracts(t *testing.T) {
	d, _ := db.OpenMemory(64)
	if err := Install(d, genops.NewKernel()); err != nil {
		t.Fatal(err)
	}
	ns := seq.MustNucSeq(seq.AlphaDNA, "ATGAAACCC")
	rns := seq.MustNucSeq(seq.AlphaRNA, "AUGAAACCC")
	samples := map[string]struct {
		value   gdt.Value
		hasSeq  bool
		wantSeq string
	}{
		"nucleotide": {value: gdt.Nucleotide{Base: seq.G}},
		"dna":        {value: gdt.DNA{ID: "d", Seq: ns}, hasSeq: true, wantSeq: "ATGAAACCC"},
		"rna":        {value: gdt.RNA{ID: "r", Seq: rns}, hasSeq: true, wantSeq: "AUGAAACCC"},
		"primarytranscript": {
			value:  gdt.PrimaryTranscript{GeneID: "g", Seq: rns, Exons: []gdt.Interval{{Start: 0, End: 9}}},
			hasSeq: true, wantSeq: "AUGAAACCC"},
		"mrna":    {value: gdt.MRNA{GeneID: "g", Seq: rns}, hasSeq: true, wantSeq: "AUGAAACCC"},
		"protein": {value: gdt.Protein{ID: "p", Seq: seq.MustProtSeq("MK")}},
		"gene": {value: gdt.Gene{ID: "g", Seq: ns, Exons: []gdt.Interval{{Start: 0, End: 9}}},
			hasSeq: true, wantSeq: "ATGAAACCC"},
		"chromosome": {value: gdt.Chromosome{ID: "c", Name: "chr1", Seq: ns},
			hasSeq: true, wantSeq: "ATGAAACCC"},
		"genome":     {value: gdt.Genome{ID: "gn", Organism: "o", ChromosomeIDs: []string{"c"}}},
		"annotation": {value: gdt.Annotation{ID: "a", TargetID: "t", Text: "note"}},
	}
	for name, s := range samples {
		udt, ok := d.UDTs.Get(name)
		if !ok {
			t.Fatalf("UDT %s not registered", name)
		}
		if !udt.Check(s.value) {
			t.Errorf("%s: Check rejected its own value", name)
		}
		// Check rejects other kinds.
		if name != "dna" && udt.Check(gdt.MustDNA("x", "A")) {
			t.Errorf("%s: Check accepted a dna value", name)
		}
		packed, err := udt.Pack(s.value)
		if err != nil {
			t.Fatalf("%s: Pack: %v", name, err)
		}
		back, err := udt.Unpack(packed)
		if err != nil {
			t.Fatalf("%s: Unpack: %v", name, err)
		}
		if !gdt.Equal(back.(gdt.Value), s.value) {
			t.Errorf("%s: round-trip mismatch", name)
		}
		// Pack of a non-GDT fails.
		if _, err := udt.Pack("not a gdt"); err == nil {
			t.Errorf("%s: Pack accepted a string", name)
		}
		// Sequence extraction.
		if s.hasSeq {
			got, ok := udt.ExtractSeq(s.value)
			if !ok || got.String() != s.wantSeq {
				t.Errorf("%s: ExtractSeq = %q, %v", name, got.String(), ok)
			}
			if _, ok := udt.ExtractSeq("wrong type"); ok {
				t.Errorf("%s: ExtractSeq accepted a string", name)
			}
		} else if udt.ExtractSeq != nil {
			t.Errorf("%s: unexpected ExtractSeq", name)
		}
	}
}

func TestSortOfRuntimeAllKinds(t *testing.T) {
	cases := []struct {
		v    any
		want core.Sort
	}{
		{gdt.MustDNA("d", "A"), "dna"},
		{gdt.Protein{ID: "p"}, "protein"},
		{int64(1), core.SortInt},
		{1.5, core.SortFloat},
		{"s", core.SortString},
		{true, core.SortBool},
	}
	for _, c := range cases {
		got, err := sortOfRuntime(c.v)
		if err != nil || got != c.want {
			t.Errorf("sortOfRuntime(%T) = %v, %v", c.v, got, err)
		}
	}
	if _, err := sortOfRuntime([]byte("x")); err == nil {
		t.Error("bytes got a sort")
	}
	if _, err := sortOfRuntime(nil); err == nil {
		t.Error("nil got a sort")
	}
}

func TestRNAAndAnnotationColumnsThroughSQL(t *testing.T) {
	e := installed(t)
	mustExec(t, e, `CREATE TABLE transcripts (id string, r rna)`)
	mustExec(t, e, `INSERT INTO transcripts VALUES ('t1', rna('t1', 'AUGAAACCC'))`)
	r := mustExec(t, e, `SELECT length(r) FROM transcripts`)
	if r.Rows[0][0] != int64(9) {
		t.Errorf("rna length = %v", r.Rows[0])
	}
	mustExec(t, e, `CREATE TABLE notes (id string, a annotation)`)
	mustExec(t, e, `INSERT INTO notes VALUES ('n1', annotation('n1', 'SYN1', 5, 10, 'me', 'text'))`)
	rr := mustExec(t, e, `SELECT a FROM notes`)
	ann := rr.Rows[0][0].(gdt.Annotation)
	if ann.Span.Start != 5 || ann.Author != "me" {
		t.Errorf("annotation = %+v", ann)
	}
}
