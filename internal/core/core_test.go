package core

import (
	"errors"
	"strings"
	"testing"
)

// miniSig builds the paper's running example signature:
//
//	sorts  string, integer, char
//	ops    concat: string x string -> string
//	       getchar: string x integer -> char
func miniSig(t testing.TB) (*Signature, *Algebra) {
	sig := NewSignature()
	sig.AddSort("char")
	alg := NewAlgebra(sig)
	alg.SetCarrier("char", func(v any) bool { _, ok := v.(byte); return ok })
	alg.MustRegister(OpSig{Name: "concat", Args: []Sort{SortString, SortString}, Result: SortString},
		func(args []any) (any, error) { return args[0].(string) + args[1].(string), nil })
	alg.MustRegister(OpSig{Name: "getchar", Args: []Sort{SortString, SortInt}, Result: "char"},
		func(args []any) (any, error) {
			s, i := args[0].(string), args[1].(int64)
			if i < 0 || int(i) >= len(s) {
				return nil, errors.New("index out of range")
			}
			return s[i], nil
		})
	return sig, alg
}

func TestPaperExampleTerm(t *testing.T) {
	// The paper's example: getchar(concat("Genomics", "Algebra"), 10).
	sig, alg := miniSig(t)
	term, err := ParseTerm(sig, `getchar(concat("Genomics", "Algebra"), 10)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if term.Sort() != "char" {
		t.Errorf("term sort = %q, want char", term.Sort())
	}
	v, err := alg.Eval(term, nil)
	if err != nil {
		t.Fatal(err)
	}
	// "GenomicsAlgebra"[10] == 'g'
	if v.(byte) != 'g' {
		t.Errorf("eval = %q, want 'g'", v)
	}
}

func TestSignatureSortRegistry(t *testing.T) {
	sig := NewSignature()
	if !sig.HasSort(SortBool) || !sig.HasSort(SortString) {
		t.Error("builtin sorts missing")
	}
	sig.AddSort("gene", "protein")
	if !sig.HasSort("gene") {
		t.Error("AddSort failed")
	}
	sorts := sig.Sorts()
	for i := 1; i < len(sorts); i++ {
		if sorts[i-1] >= sorts[i] {
			t.Errorf("Sorts not ordered: %v", sorts)
		}
	}
}

func TestAddOpValidation(t *testing.T) {
	sig := NewSignature()
	if err := sig.AddOp(OpSig{Name: "f", Args: []Sort{"nosuch"}, Result: SortBool}); err == nil {
		t.Error("unknown arg sort accepted")
	}
	if err := sig.AddOp(OpSig{Name: "f", Result: "nosuch"}); err == nil {
		t.Error("unknown result sort accepted")
	}
	if err := sig.AddOp(OpSig{Result: SortBool}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestOverloadResolution(t *testing.T) {
	sig := NewSignature()
	sig.AddSort("dna", "rna")
	sig.MustAddOp(OpSig{Name: "length", Args: []Sort{"dna"}, Result: SortInt})
	sig.MustAddOp(OpSig{Name: "length", Args: []Sort{"rna"}, Result: SortInt})
	if _, ok := sig.Resolve("length", []Sort{"dna"}); !ok {
		t.Error("dna overload not found")
	}
	if _, ok := sig.Resolve("length", []Sort{SortString}); ok {
		t.Error("phantom overload resolved")
	}
	if got := len(sig.Overloads("length")); got != 2 {
		t.Errorf("Overloads = %d, want 2", got)
	}
}

func TestOpReplacement(t *testing.T) {
	sig := NewSignature()
	alg := NewAlgebra(sig)
	op := OpSig{Name: "f", Args: []Sort{SortInt}, Result: SortInt}
	alg.MustRegister(op, func(args []any) (any, error) { return args[0].(int64) + 1, nil })
	term := MustApply(sig, "f", Const(SortInt, int64(1)))
	if v, _ := alg.Eval(term, nil); v.(int64) != 2 {
		t.Fatalf("first impl = %v", v)
	}
	// Swap the implementation without changing the interface (paper §4.2).
	alg.MustRegister(op, func(args []any) (any, error) { return args[0].(int64) * 10, nil })
	if v, _ := alg.Eval(term, nil); v.(int64) != 10 {
		t.Errorf("replaced impl = %v", v)
	}
	if got := len(sig.Overloads("f")); got != 1 {
		t.Errorf("replacement duplicated overload: %d", got)
	}
}

func TestApplyErrors(t *testing.T) {
	sig, _ := miniSig(t)
	if _, err := Apply(sig, "nosuch", Const(SortInt, int64(1))); err == nil || !strings.Contains(err.Error(), "unknown operator") {
		t.Errorf("unknown op error = %v", err)
	}
	_, err := Apply(sig, "concat", Const(SortInt, int64(1)), Const(SortInt, int64(2)))
	if err == nil || !strings.Contains(err.Error(), "no overload") {
		t.Errorf("bad args error = %v", err)
	}
	// Error message lists available overloads.
	if !strings.Contains(err.Error(), "concat: string x string -> string") {
		t.Errorf("error lacks overload listing: %v", err)
	}
	if _, err := Apply(sig, "concat", nil, nil); err == nil {
		t.Error("nil argument accepted")
	}
}

func TestVariablesAndEnv(t *testing.T) {
	sig, alg := miniSig(t)
	term, err := ParseTerm(sig, `concat(x, "!")`, map[string]Sort{"x": SortString})
	if err != nil {
		t.Fatal(err)
	}
	if vars := term.Vars(); len(vars) != 1 || vars[0] != "x" {
		t.Errorf("Vars = %v", vars)
	}
	v, err := alg.Eval(term, Env{"x": "hi"})
	if err != nil || v.(string) != "hi!" {
		t.Errorf("eval = %v, %v", v, err)
	}
	// Unbound variable fails with a useful error.
	_, err = alg.Eval(term, Env{})
	var ee *EvalError
	if !errors.As(err, &ee) || !strings.Contains(err.Error(), "unbound variable") {
		t.Errorf("unbound var error = %v", err)
	}
}

func TestCarrierChecking(t *testing.T) {
	sig := NewSignature()
	alg := NewAlgebra(sig)
	// A buggy operator returning the wrong Go type must be caught.
	alg.MustRegister(OpSig{Name: "bad", Args: nil, Result: SortInt},
		func(args []any) (any, error) { return "not an int", nil })
	term := MustApply(sig, "bad")
	if _, err := alg.Eval(term, nil); err == nil || !strings.Contains(err.Error(), "carrier") {
		t.Errorf("carrier violation not caught: %v", err)
	}
}

func TestEvalErrorPropagation(t *testing.T) {
	sig, alg := miniSig(t)
	term := MustApply(sig, "getchar", Const(SortString, "ab"), Const(SortInt, int64(99)))
	_, err := alg.Eval(term, nil)
	if err == nil || !strings.Contains(err.Error(), "index out of range") {
		t.Errorf("err = %v", err)
	}
	// The failing term is named in the error.
	if !strings.Contains(err.Error(), "getchar") {
		t.Errorf("error lacks term context: %v", err)
	}
}

func TestEvalNilAndMissingImpl(t *testing.T) {
	sig, alg := miniSig(t)
	if _, err := alg.Eval(nil, nil); err == nil {
		t.Error("nil term accepted")
	}
	// Operator in signature but without implementation.
	sig.MustAddOp(OpSig{Name: "ghost", Args: nil, Result: SortBool})
	term := MustApply(sig, "ghost")
	if _, err := alg.Eval(term, nil); err == nil || !strings.Contains(err.Error(), "no implementation") {
		t.Errorf("ghost op error = %v", err)
	}
}

func TestTermStringAndDepth(t *testing.T) {
	sig, _ := miniSig(t)
	term := MustApply(sig, "getchar",
		MustApply(sig, "concat", Const(SortString, "a"), Var(SortString, "y")),
		Const(SortInt, int64(0)))
	if s := term.String(); s != "getchar(concat(a, y), 0)" {
		t.Errorf("String = %q", s)
	}
	if d := term.Depth(); d != 2 {
		t.Errorf("Depth = %d, want 2", d)
	}
	if d := Const(SortInt, int64(1)).Depth(); d != 0 {
		t.Errorf("const depth = %d", d)
	}
}

func TestCallFastPath(t *testing.T) {
	_, alg := miniSig(t)
	v, err := alg.Call("concat", []Sort{SortString, SortString}, []any{"a", "b"})
	if err != nil || v.(string) != "ab" {
		t.Errorf("Call = %v, %v", v, err)
	}
	if _, err := alg.Call("concat", []Sort{SortInt}, []any{int64(1)}); err == nil {
		t.Error("Call with bad sorts succeeded")
	}
	if _, err := alg.Call("nosuch", nil, nil); err == nil {
		t.Error("Call of unknown op succeeded")
	}
}

func TestParserLiterals(t *testing.T) {
	sig := NewSignature()
	cases := []struct {
		in   string
		sort Sort
		val  any
	}{
		{`"hi"`, SortString, "hi"},
		{`"es\"caped"`, SortString, `es"caped`},
		{`42`, SortInt, int64(42)},
		{`-7`, SortInt, int64(-7)},
		{`3.25`, SortFloat, 3.25},
		{`true`, SortBool, true},
		{`false`, SortBool, false},
	}
	for _, c := range cases {
		term, err := ParseTerm(sig, c.in, nil)
		if err != nil {
			t.Errorf("ParseTerm(%q): %v", c.in, err)
			continue
		}
		if term.Sort() != c.sort || !term.IsConst() {
			t.Errorf("ParseTerm(%q) sort = %v", c.in, term.Sort())
		}
		alg := NewAlgebra(sig)
		v, err := alg.Eval(term, nil)
		if err != nil || v != c.val {
			t.Errorf("ParseTerm(%q) eval = %v (%v)", c.in, v, err)
		}
	}
}

func TestParserErrors(t *testing.T) {
	sig, _ := miniSig(t)
	cases := []string{
		``, `(`, `concat("a"`, `concat("a",)`, `concat "a"`, `"unterminated`,
		`concat("a","b") extra`, `unknownvar`, `f(@)`, `1.2.3`,
	}
	for _, c := range cases {
		if _, err := ParseTerm(sig, c, nil); err == nil {
			t.Errorf("ParseTerm(%q) succeeded", c)
		}
	}
}

func TestParserZeroArgCall(t *testing.T) {
	sig := NewSignature()
	alg := NewAlgebra(sig)
	alg.MustRegister(OpSig{Name: "pi", Args: nil, Result: SortFloat},
		func(args []any) (any, error) { return 3.14159, nil })
	term, err := ParseTerm(sig, `pi()`, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := alg.Eval(term, nil)
	if err != nil || v.(float64) != 3.14159 {
		t.Errorf("pi() = %v, %v", v, err)
	}
}

func TestConcurrentRegistrationAndEval(t *testing.T) {
	sig := NewSignature()
	alg := NewAlgebra(sig)
	alg.MustRegister(OpSig{Name: "id", Args: []Sort{SortInt}, Result: SortInt},
		func(args []any) (any, error) { return args[0], nil })
	term := MustApply(sig, "id", Const(SortInt, int64(5)))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			alg.MustRegister(OpSig{Name: "id", Args: []Sort{SortInt}, Result: SortInt},
				func(args []any) (any, error) { return args[0], nil })
		}
	}()
	for i := 0; i < 500; i++ {
		if _, err := alg.Eval(term, nil); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}

func BenchmarkTermEval(b *testing.B) {
	sig, alg := miniSig(b)
	term := MustApply(sig, "getchar",
		MustApply(sig, "concat", Const(SortString, "Genomics"), Const(SortString, "Algebra")),
		Const(SortInt, int64(10)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := alg.Eval(term, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseTerm(b *testing.B) {
	sig, _ := miniSig(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseTerm(sig, `getchar(concat("Genomics", "Algebra"), 10)`, nil); err != nil {
			b.Fatal(err)
		}
	}
}
