// Package core implements the many-sorted algebra framework of the Genomics
// Algebra (paper Section 4.2): signatures consisting of sorts and operators,
// sort-checked terms, and algebras that assign carrier sets and functions to
// a signature so that terms can be evaluated.
//
// The framework is deliberately generic: the genomic instantiation (sorts
// gene, primarytranscript, mrna, protein, ... and operators transcribe,
// splice, translate, ...) lives in package genops and is registered into a
// Signature/Algebra pair at startup. The paper's extensibility requirement
// (Section 4.2: "if required, the Genomics Algebra can be extended by new
// sorts and operations") is met by allowing registration at any time;
// registries are safe for concurrent use.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Sort is the name of a sort (type) in a many-sorted signature, e.g. "gene"
// or "protein". Sorts are compared by name.
type Sort string

// Builtin sorts available in every signature. Domain packages add their own.
const (
	SortBool   Sort = "bool"
	SortInt    Sort = "int"
	SortFloat  Sort = "float"
	SortString Sort = "string"
)

// OpSig is the signature of one operator: its name, argument sorts, and
// result sort. In the paper's notation, "translate: mrna -> protein" is
// OpSig{Name: "translate", Args: []Sort{"mrna"}, Result: "protein"}.
type OpSig struct {
	Name   string
	Args   []Sort
	Result Sort
	// Doc is a one-line description shown by the shell's help listing.
	Doc string
	// Selectivity is the estimated fraction of inputs for which a
	// bool-resulting operator returns true; used by the query planner
	// (paper Section 6.5). Zero means unknown.
	Selectivity float64
	// Cost is a relative per-invocation cost estimate used by the planner;
	// zero means cheap (unit cost).
	Cost float64
}

// String renders the signature in the paper's arrow notation.
func (o OpSig) String() string {
	args := make([]string, len(o.Args))
	for i, a := range o.Args {
		args[i] = string(a)
	}
	return fmt.Sprintf("%s: %s -> %s", o.Name, strings.Join(args, " x "), o.Result)
}

// key returns the overload-resolution key: name plus argument sorts.
// The algebra permits overloading by argument sorts but not by result sort.
func (o OpSig) key() string {
	parts := make([]string, 0, len(o.Args)+1)
	parts = append(parts, o.Name)
	for _, a := range o.Args {
		parts = append(parts, string(a))
	}
	return strings.Join(parts, "|")
}

// Signature is an extensible many-sorted signature: a set of sorts and a set
// of operators over them. The zero value is not usable; call NewSignature.
type Signature struct {
	mu    sync.RWMutex
	sorts map[Sort]bool
	ops   map[string]OpSig   // by overload key
	byOp  map[string][]OpSig // by operator name, registration order
}

// NewSignature returns a signature containing the builtin sorts.
func NewSignature() *Signature {
	s := &Signature{
		sorts: make(map[Sort]bool),
		ops:   make(map[string]OpSig),
		byOp:  make(map[string][]OpSig),
	}
	for _, b := range []Sort{SortBool, SortInt, SortFloat, SortString} {
		s.sorts[b] = true
	}
	return s
}

// AddSort registers a sort. Adding an existing sort is a no-op.
func (s *Signature) AddSort(sorts ...Sort) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, so := range sorts {
		s.sorts[so] = true
	}
}

// HasSort reports whether the sort is registered.
func (s *Signature) HasSort(so Sort) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sorts[so]
}

// Sorts returns all registered sorts in lexical order.
func (s *Signature) Sorts() []Sort {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Sort, 0, len(s.sorts))
	for so := range s.sorts {
		out = append(out, so)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddOp registers an operator. All its sorts must already be registered.
// Re-registering the same overload replaces it (the paper's Section 4.2
// notes that inefficient implementations can be swapped "without changing
// the interface").
func (s *Signature) AddOp(op OpSig) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if op.Name == "" {
		return fmt.Errorf("core: operator with empty name")
	}
	if !s.sorts[op.Result] {
		return fmt.Errorf("core: operator %s: unknown result sort %q", op.Name, op.Result)
	}
	for _, a := range op.Args {
		if !s.sorts[a] {
			return fmt.Errorf("core: operator %s: unknown argument sort %q", op.Name, a)
		}
	}
	k := op.key()
	if _, exists := s.ops[k]; exists {
		// Replace in byOp.
		overloads := s.byOp[op.Name]
		for i, o := range overloads {
			if o.key() == k {
				overloads[i] = op
			}
		}
	} else {
		s.byOp[op.Name] = append(s.byOp[op.Name], op)
	}
	s.ops[k] = op
	return nil
}

// MustAddOp is AddOp that panics on error; for static registration blocks.
func (s *Signature) MustAddOp(op OpSig) {
	if err := s.AddOp(op); err != nil {
		panic(err)
	}
}

// Resolve finds the operator overload matching name and argument sorts.
func (s *Signature) Resolve(name string, args []Sort) (OpSig, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	op, ok := s.ops[OpSig{Name: name, Args: args}.key()]
	return op, ok
}

// Overloads returns all registered overloads of an operator name, in
// registration order.
func (s *Signature) Overloads(name string) []OpSig {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]OpSig, len(s.byOp[name]))
	copy(out, s.byOp[name])
	return out
}

// Ops returns every registered operator, sorted by name then arity.
func (s *Signature) Ops() []OpSig {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]OpSig, 0, len(s.ops))
	for _, op := range s.ops {
		out = append(out, op)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].key() < out[j].key()
	})
	return out
}
