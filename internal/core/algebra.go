package core

import (
	"fmt"
	"sync"
)

// OpFunc is the Go implementation of an operator: it receives fully
// evaluated argument values and returns the result value.
type OpFunc func(args []any) (any, error)

// CarrierCheck validates that a runtime value belongs to a sort's carrier
// set. nil disables checking for that sort.
type CarrierCheck func(v any) bool

// Algebra assigns semantics to a Signature: a carrier-set membership check
// per sort and an implementing function per operator. This mirrors the
// paper's definition — "to assign semantics to a signature, one must assign
// a (carrier) set to each sort and a function to each operator".
//
// An Algebra is safe for concurrent use; registration may interleave with
// evaluation (the extensibility requirement C13/C14).
type Algebra struct {
	sig      *Signature
	mu       sync.RWMutex
	funcs    map[string]OpFunc // by overload key
	carriers map[Sort]CarrierCheck
}

// NewAlgebra creates an algebra over sig with builtin carriers for bool,
// int, float, and string.
func NewAlgebra(sig *Signature) *Algebra {
	a := &Algebra{
		sig:      sig,
		funcs:    make(map[string]OpFunc),
		carriers: make(map[Sort]CarrierCheck),
	}
	a.carriers[SortBool] = func(v any) bool { _, ok := v.(bool); return ok }
	a.carriers[SortInt] = func(v any) bool { _, ok := v.(int64); return ok }
	a.carriers[SortFloat] = func(v any) bool { _, ok := v.(float64); return ok }
	a.carriers[SortString] = func(v any) bool { _, ok := v.(string); return ok }
	return a
}

// Signature returns the underlying signature.
func (a *Algebra) Signature() *Signature { return a.sig }

// SetCarrier registers the membership check for a sort.
func (a *Algebra) SetCarrier(s Sort, check CarrierCheck) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.carriers[s] = check
}

// Register binds fn as the implementation of the given operator overload,
// registering the operator in the signature if it is not yet present.
func (a *Algebra) Register(op OpSig, fn OpFunc) error {
	if fn == nil {
		return fmt.Errorf("core: nil implementation for %s", op.Name)
	}
	if err := a.sig.AddOp(op); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.funcs[op.key()] = fn
	return nil
}

// MustRegister is Register that panics on error.
func (a *Algebra) MustRegister(op OpSig, fn OpFunc) {
	if err := a.Register(op, fn); err != nil {
		panic(err)
	}
}

// Env binds variable names to values for term evaluation.
type Env map[string]any

// EvalError wraps an evaluation failure with the term position at which it
// occurred.
type EvalError struct {
	Term string
	Err  error
}

func (e *EvalError) Error() string { return fmt.Sprintf("core: evaluating %s: %v", e.Term, e.Err) }

// Unwrap supports errors.Is/As.
func (e *EvalError) Unwrap() error { return e.Err }

// Eval evaluates a term under the environment, checking carrier membership
// of every intermediate value whose sort has a registered check.
func (a *Algebra) Eval(t *Term, env Env) (any, error) {
	switch {
	case t == nil:
		return nil, fmt.Errorf("core: nil term")
	case t.isConst:
		return t.value, a.checkCarrier(t.sort, t.value, t)
	case t.isVar:
		v, ok := env[t.varName]
		if !ok {
			return nil, &EvalError{Term: t.String(), Err: fmt.Errorf("unbound variable %q", t.varName)}
		}
		return v, a.checkCarrier(t.sort, v, t)
	}
	args := make([]any, len(t.args))
	for i, at := range t.args {
		v, err := a.Eval(at, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	a.mu.RLock()
	fn := a.funcs[t.op.key()]
	a.mu.RUnlock()
	if fn == nil {
		return nil, &EvalError{Term: t.String(), Err: fmt.Errorf("operator %s has no implementation", t.op)}
	}
	out, err := fn(args)
	if err != nil {
		return nil, &EvalError{Term: t.String(), Err: err}
	}
	return out, a.checkCarrier(t.sort, out, t)
}

func (a *Algebra) checkCarrier(s Sort, v any, t *Term) error {
	a.mu.RLock()
	check := a.carriers[s]
	a.mu.RUnlock()
	if check != nil && !check(v) {
		return &EvalError{Term: t.String(), Err: fmt.Errorf("value %T is not in carrier of sort %q", v, s)}
	}
	return nil
}

// Call resolves and invokes an operator directly on values, inferring
// nothing: the caller supplies the argument sorts. It is the fast path used
// by the DBMS adapter, bypassing Term construction.
func (a *Algebra) Call(name string, argSorts []Sort, args []any) (any, error) {
	op, ok := a.sig.Resolve(name, argSorts)
	if !ok {
		return nil, fmt.Errorf("core: no overload of %q accepts (%s)", name, joinSorts(argSorts))
	}
	a.mu.RLock()
	fn := a.funcs[op.key()]
	a.mu.RUnlock()
	if fn == nil {
		return nil, fmt.Errorf("core: operator %s has no implementation", op)
	}
	return fn(args)
}
