package core

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseTerm parses the functional term notation used throughout the paper,
// e.g.
//
//	translate(splice(transcribe(g)))
//	getchar(concat("Genomics", "Algebra"), 10)
//
// Identifiers that are not operator applications are resolved as variables
// whose sorts are supplied in varSorts. Integer, float, and double-quoted
// string literals become constants of the builtin sorts. Operator overloads
// are resolved from the argument sorts, so parsing performs full static
// sort checking.
func ParseTerm(sig *Signature, input string, varSorts map[string]Sort) (*Term, error) {
	p := &termParser{sig: sig, in: input, vars: varSorts}
	t, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("core: trailing input at offset %d: %q", p.pos, p.in[p.pos:])
	}
	return t, nil
}

type termParser struct {
	sig  *Signature
	in   string
	pos  int
	vars map[string]Sort
}

func (p *termParser) skipSpace() {
	for p.pos < len(p.in) && unicode.IsSpace(rune(p.in[p.pos])) {
		p.pos++
	}
}

func (p *termParser) parseExpr() (*Term, error) {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return nil, fmt.Errorf("core: unexpected end of term at offset %d", p.pos)
	}
	ch := p.in[p.pos]
	switch {
	case ch == '"':
		return p.parseString()
	case ch == '-' || ch >= '0' && ch <= '9':
		return p.parseNumber()
	case isIdentStart(ch):
		return p.parseIdentOrCall()
	}
	return nil, fmt.Errorf("core: unexpected character %q at offset %d", ch, p.pos)
}

func (p *termParser) parseString() (*Term, error) {
	start := p.pos
	p.pos++ // opening quote
	var sb strings.Builder
	for p.pos < len(p.in) {
		ch := p.in[p.pos]
		if ch == '\\' && p.pos+1 < len(p.in) {
			p.pos++
			sb.WriteByte(p.in[p.pos])
			p.pos++
			continue
		}
		if ch == '"' {
			p.pos++
			return Const(SortString, sb.String()), nil
		}
		sb.WriteByte(ch)
		p.pos++
	}
	return nil, fmt.Errorf("core: unterminated string starting at offset %d", start)
}

func (p *termParser) parseNumber() (*Term, error) {
	start := p.pos
	if p.in[p.pos] == '-' {
		p.pos++
	}
	isFloat := false
	for p.pos < len(p.in) {
		ch := p.in[p.pos]
		if ch >= '0' && ch <= '9' {
			p.pos++
			continue
		}
		if ch == '.' && !isFloat {
			isFloat = true
			p.pos++
			continue
		}
		break
	}
	text := p.in[start:p.pos]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("core: bad float literal %q at offset %d", text, start)
		}
		return Const(SortFloat, f), nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("core: bad integer literal %q at offset %d", text, start)
	}
	return Const(SortInt, n), nil
}

func isIdentStart(ch byte) bool {
	return ch == '_' || ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z'
}

func isIdentChar(ch byte) bool {
	return isIdentStart(ch) || ch >= '0' && ch <= '9'
}

func (p *termParser) parseIdentOrCall() (*Term, error) {
	start := p.pos
	for p.pos < len(p.in) && isIdentChar(p.in[p.pos]) {
		p.pos++
	}
	name := p.in[start:p.pos]
	p.skipSpace()
	if p.pos >= len(p.in) || p.in[p.pos] != '(' {
		// Variable or keyword constant.
		switch name {
		case "true":
			return Const(SortBool, true), nil
		case "false":
			return Const(SortBool, false), nil
		}
		sort, ok := p.vars[name]
		if !ok {
			return nil, fmt.Errorf("core: unknown variable %q at offset %d (no sort binding supplied)", name, start)
		}
		return Var(sort, name), nil
	}
	// Operator application.
	p.pos++ // '('
	var args []*Term
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == ')' {
		p.pos++
	} else {
		for {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, arg)
			p.skipSpace()
			if p.pos >= len(p.in) {
				return nil, fmt.Errorf("core: unterminated argument list for %q", name)
			}
			if p.in[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.in[p.pos] == ')' {
				p.pos++
				break
			}
			return nil, fmt.Errorf("core: expected ',' or ')' at offset %d, found %q", p.pos, p.in[p.pos])
		}
	}
	return Apply(p.sig, name, args...)
}
