package core

import "testing"

// FuzzParseTerm asserts the term parser never panics and accepted terms are
// well-sorted.
func FuzzParseTerm(f *testing.F) {
	seeds := []string{
		`getchar(concat("Genomics", "Algebra"), 10)`,
		`concat(x, "!")`,
		`f(g(h(1)), -2.5, true, "s")`,
		`pi()`, `(`, `f(`, `"unterminated`, `1.2.3`, `f(,)`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		sig := NewSignature()
		sig.AddSort("char")
		sig.MustAddOp(OpSig{Name: "concat", Args: []Sort{SortString, SortString}, Result: SortString})
		sig.MustAddOp(OpSig{Name: "getchar", Args: []Sort{SortString, SortInt}, Result: "char"})
		sig.MustAddOp(OpSig{Name: "pi", Result: SortFloat})
		term, err := ParseTerm(sig, input, map[string]Sort{"x": SortString})
		if err != nil {
			return
		}
		if term.Sort() == "" {
			t.Fatal("accepted term has empty sort")
		}
		_ = term.String()
		_ = term.Vars()
		_ = term.Depth()
	})
}
