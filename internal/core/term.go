package core

import (
	"fmt"
	"strings"
)

// Term is a sort-checked term over a signature: either a constant carrying a
// value, a named variable, or an operator application. Terms are immutable
// once built.
type Term struct {
	sort Sort
	// exactly one of the following is set
	op       *OpSig
	args     []*Term
	value    any    // for constants
	varName  string // for variables
	isConst  bool
	isVar    bool
	describe string // cached String
}

// Sort returns the result sort of the term (the paper: "the sort of a term
// is the result sort of its outermost operator").
func (t *Term) Sort() Sort { return t.sort }

// IsConst reports whether the term is a constant.
func (t *Term) IsConst() bool { return t.isConst }

// IsVar reports whether the term is a variable.
func (t *Term) IsVar() bool { return t.isVar }

// VarName returns the variable name for variable terms.
func (t *Term) VarName() string { return t.varName }

// Op returns the outermost operator for application terms, or nil.
func (t *Term) Op() *OpSig { return t.op }

// Args returns the argument terms for application terms.
func (t *Term) Args() []*Term { return t.args }

// Const builds a constant term of the given sort holding value v.
func Const(sort Sort, v any) *Term {
	return &Term{sort: sort, value: v, isConst: true}
}

// Var builds a variable term of the given sort. Variables are bound at
// evaluation time through an Env.
func Var(sort Sort, name string) *Term {
	return &Term{sort: sort, varName: name, isVar: true}
}

// Apply builds an application term, resolving the operator against sig and
// statically checking argument sorts. This is the algebra's term
// constructor: Apply(sig, "translate", mrnaTerm) yields a term of sort
// protein.
func Apply(sig *Signature, name string, args ...*Term) (*Term, error) {
	argSorts := make([]Sort, len(args))
	for i, a := range args {
		if a == nil {
			return nil, fmt.Errorf("core: %s: argument %d is nil", name, i)
		}
		argSorts[i] = a.Sort()
	}
	op, ok := sig.Resolve(name, argSorts)
	if !ok {
		// Produce a helpful message listing available overloads.
		var avail []string
		for _, o := range sig.Overloads(name) {
			avail = append(avail, o.String())
		}
		if len(avail) == 0 {
			return nil, fmt.Errorf("core: unknown operator %q", name)
		}
		return nil, fmt.Errorf("core: no overload of %q accepts (%s); have: %s",
			name, joinSorts(argSorts), strings.Join(avail, "; "))
	}
	opCopy := op
	return &Term{sort: op.Result, op: &opCopy, args: args}, nil
}

// MustApply is Apply that panics on error.
func MustApply(sig *Signature, name string, args ...*Term) *Term {
	t, err := Apply(sig, name, args...)
	if err != nil {
		panic(err)
	}
	return t
}

func joinSorts(ss []Sort) string {
	parts := make([]string, len(ss))
	for i, s := range ss {
		parts[i] = string(s)
	}
	return strings.Join(parts, ", ")
}

// String renders the term in functional notation, e.g.
// translate(splice(transcribe(g))).
func (t *Term) String() string {
	if t.describe != "" {
		return t.describe
	}
	switch {
	case t.isConst:
		t.describe = fmt.Sprintf("%v", t.value)
	case t.isVar:
		t.describe = t.varName
	default:
		parts := make([]string, len(t.args))
		for i, a := range t.args {
			parts[i] = a.String()
		}
		t.describe = fmt.Sprintf("%s(%s)", t.op.Name, strings.Join(parts, ", "))
	}
	return t.describe
}

// Vars returns the distinct variable names appearing in the term, in
// first-occurrence order.
func (t *Term) Vars() []string {
	var out []string
	seen := map[string]bool{}
	var walk func(*Term)
	walk = func(x *Term) {
		switch {
		case x.isVar:
			if !seen[x.varName] {
				seen[x.varName] = true
				out = append(out, x.varName)
			}
		case !x.isConst:
			for _, a := range x.args {
				walk(a)
			}
		}
	}
	walk(t)
	return out
}

// Depth returns the operator-application nesting depth (constants and
// variables have depth 0).
func (t *Term) Depth() int {
	if t.isConst || t.isVar {
		return 0
	}
	max := 0
	for _, a := range t.args {
		if d := a.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}
