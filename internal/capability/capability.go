// Package capability reproduces the paper's Table 1: the qualitative
// matrix scoring biological data-integration systems against the
// computer-science requirements C1-C15 of Section 2. The six surveyed
// systems are encoded from the paper's own cells; the GenAlg+UnifyingDB
// column is *validated*, not asserted — every supported cell carries a
// runnable check that exercises the corresponding feature of this
// repository (see Validate).
package capability

import (
	"fmt"
	"sort"
	"strings"
)

// Level grades a system's support for one requirement.
type Level uint8

// Support levels.
const (
	None Level = iota
	Partial
	Full
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case None:
		return "no"
	case Partial:
		return "partial"
	case Full:
		return "yes"
	}
	return "?"
}

// Requirement is one of the paper's C1-C15.
type Requirement struct {
	ID    string
	Title string
}

// Requirements lists C1-C15 in order, titled per Section 2.
func Requirements() []Requirement {
	return []Requirement{
		{"C1", "Multitude and heterogeneity of repositories"},
		{"C2", "Standards for genomic data representation"},
		{"C3", "Single user interface"},
		{"C4", "Quality of user interfaces"},
		{"C5", "Quality of query languages"},
		{"C6", "Functionality beyond repository interfaces"},
		{"C7", "Query results usable for further computation"},
		{"C8", "Reconciliation of inconsistent data"},
		{"C9", "Uncertainty of data"},
		{"C10", "Combination of data from different repositories"},
		{"C11", "Extraction of hidden knowledge / annotations"},
		{"C12", "High-level (biological) treatment of data"},
		{"C13", "Integration of self-generated data"},
		{"C14", "User-defined evaluation functions"},
		{"C15", "Archival of lost repositories"},
	}
}

// Cell is one system x requirement entry.
type Cell struct {
	Level Level
	Note  string
}

// System is one Table-1 column.
type System struct {
	Name  string
	Cells map[string]Cell
}

// Surveyed returns the six systems of the paper's Table 1, with cells
// transcribed from the paper's own wording.
func Surveyed() []System {
	mk := func(name string, cells map[string]Cell) System {
		return System{Name: name, Cells: cells}
	}
	shielded := Cell{Full, "user shielded from source details"}
	single := Cell{Full, "single-access point"}
	noOps := Cell{None, "no new operations"}
	viewOps := Cell{Partial, "new operations on integrated view data"}
	noRecon := Cell{None, "no reconciliation of results"}
	noUnc := Cell{None, "no provision for uncertainty"}
	notSupported := Cell{None, "not supported"}
	noArchive := Cell{None, "no archival functionality"}
	webOnly := Cell{None, "results not integrated; sources must be Web-enabled"}
	globalIntegrated := Cell{Partial, "results integrated using global schema; wrapper needed"}

	return []System{
		mk("SRS", map[string]Cell{
			"C1": shielded, "C2": {None, "HTML"}, "C3": single,
			"C4": {Partial, "simple visual interface"}, "C5": {Partial, "limited query capability"},
			"C6": noOps, "C7": {None, "no re-organization of source data"},
			"C8": noRecon, "C9": noUnc, "C10": webOnly,
			"C11": notSupported, "C12": notSupported, "C13": notSupported,
			"C14": notSupported, "C15": noArchive,
		}),
		mk("BioNavigator", map[string]Cell{
			"C1": shielded, "C2": {None, "HTML"}, "C3": single,
			"C4": {Partial, "simple visual interface"}, "C5": {None, "not query oriented"},
			"C6": noOps, "C7": {None, "no re-organization of source data"},
			"C8": noRecon, "C9": noUnc, "C10": webOnly,
			"C11": notSupported, "C12": notSupported, "C13": notSupported,
			"C14": notSupported, "C15": noArchive,
		}),
		mk("K2/Kleisli", map[string]Cell{
			"C1": shielded, "C2": {Partial, "global schema, object-oriented model"}, "C3": single,
			"C4": {None, "not a user-level interface"}, "C5": {Full, "comprehensive query capability"},
			"C6": viewOps, "C7": {Partial, "reorganization of result possible"},
			"C8": noRecon, "C9": noUnc, "C10": globalIntegrated,
			"C11": notSupported, "C12": notSupported, "C13": notSupported,
			"C14": notSupported, "C15": noArchive,
		}),
		mk("DiscoveryLink", map[string]Cell{
			"C1": shielded, "C2": {Partial, "global schema, relational model"}, "C3": single,
			"C4": {Partial, "requires knowledge of SQL"}, "C5": {Full, "comprehensive query capability"},
			"C6": viewOps, "C7": {Partial, "reorganization of result possible"},
			"C8": noRecon, "C9": noUnc, "C10": globalIntegrated,
			"C11": notSupported, "C12": notSupported, "C13": notSupported,
			"C14": notSupported, "C15": noArchive,
		}),
		mk("TAMBIS", map[string]Cell{
			"C1": shielded, "C2": {Partial, "global schema, description logic"}, "C3": single,
			"C4": {Partial, "simple visual interface"}, "C5": {Full, "comprehensive query capability"},
			"C6": viewOps, "C7": {Partial, "reorganization of result possible"},
			"C8": {Partial, "result reconciliation supported"}, "C9": noUnc, "C10": globalIntegrated,
			"C11": notSupported, "C12": notSupported, "C13": notSupported,
			"C14": notSupported, "C15": noArchive,
		}),
		mk("GUS", map[string]Cell{
			"C1": shielded, "C2": {Partial, "GUS schema, relational; OO views"}, "C3": single,
			"C4": {Partial, "requires knowledge of SQL"}, "C5": {Full, "comprehensive query capability"},
			"C6": {Partial, "new operations on warehouse data"}, "C7": {Partial, "reorganization of result possible"},
			"C8": {Full, "warehouse data reconciled and cleansed"}, "C9": noUnc,
			"C10": {Full, "query results are integrated"},
			"C11": {Partial, "annotations supported"}, "C12": notSupported,
			"C13": {Full, "supported"}, "C14": notSupported,
			"C15": {Full, "archiving of data supported"},
		}),
	}
}

// Check exercises one GenAlg capability live; it returns an error when the
// claimed feature does not actually work in this repository.
type Check func() error

// GenAlgClaims returns the GenAlg+UnifyingDB column with its per-cell
// checks. The checks are supplied by the caller (package capability cannot
// import the whole stack without creating a dependency cycle in tests);
// NewGenAlgColumn in checks.go wires the real ones.
func GenAlgClaims() map[string]Cell {
	return map[string]Cell{
		"C1":  {Full, "warehouse integrates all sources; user shielded"},
		"C2":  {Full, "GDTs as canonical representation + GenAlgXML"},
		"C3":  {Full, "single access point: BiQL/SQL over the warehouse"},
		"C4":  {Full, "biologist-facing BiQL, no SQL knowledge required"},
		"C5":  {Full, "extended SQL + BiQL with algebra operations"},
		"C6":  {Full, "full Genomics Algebra operation set"},
		"C7":  {Full, "results are GDT values usable in further terms"},
		"C8":  {Full, "integrator reconciles; duplicates removed"},
		"C9":  {Full, "uncertainty values retain conflicting alternatives"},
		"C10": {Full, "multi-source entities merged with provenance"},
		"C11": {Full, "annotations as first-class GDT values"},
		"C12": {Full, "gene/protein-level types and operations"},
		"C13": {Full, "user space with own tables, joinable with public"},
		"C14": {Full, "runtime-registered user-defined operations"},
		"C15": {Full, "archival of disappeared sources"},
	}
}

// Matrix is the full Table 1: surveyed systems plus the GenAlg column.
type Matrix struct {
	Systems []System
}

// BuildMatrix assembles Table 1.
func BuildMatrix() Matrix {
	systems := Surveyed()
	systems = append(systems, System{Name: "GenAlg+UDB", Cells: GenAlgClaims()})
	return Matrix{Systems: systems}
}

// Render draws the matrix as an aligned text table (the benchtab output for
// experiment T1).
func (m Matrix) Render() string {
	reqs := Requirements()
	var sb strings.Builder
	// Header.
	fmt.Fprintf(&sb, "%-4s %-44s", "", "requirement")
	for _, s := range m.Systems {
		fmt.Fprintf(&sb, " %-13s", s.Name)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%s\n", strings.Repeat("-", 49+14*len(m.Systems)))
	for _, r := range reqs {
		fmt.Fprintf(&sb, "%-4s %-44s", r.ID, r.Title)
		for _, s := range m.Systems {
			cell, ok := s.Cells[r.ID]
			lv := "?"
			if ok {
				lv = cell.Level.String()
			}
			fmt.Fprintf(&sb, " %-13s", lv)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Score sums a system's support (no=0, partial=1, yes=2), the coarse
// ranking the paper's argument implies.
func (m Matrix) Score(name string) (int, error) {
	for _, s := range m.Systems {
		if s.Name != name {
			continue
		}
		total := 0
		for _, c := range s.Cells {
			total += int(c.Level)
		}
		return total, nil
	}
	return 0, fmt.Errorf("capability: unknown system %q", name)
}

// Names lists the systems in column order.
func (m Matrix) Names() []string {
	out := make([]string, len(m.Systems))
	for i, s := range m.Systems {
		out[i] = s.Name
	}
	return out
}

// Validate runs the supplied checks for every GenAlg cell and returns the
// requirement IDs whose checks failed (empty = the claimed column is
// backed by working code). Checks missing for a claimed cell count as
// failures: a claim without evidence is a failure of reproduction.
func Validate(checks map[string]Check) (failed []string, errs []error) {
	claims := GenAlgClaims()
	ids := make([]string, 0, len(claims))
	for id := range claims {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		check, ok := checks[id]
		if !ok {
			failed = append(failed, id)
			errs = append(errs, fmt.Errorf("capability: no check wired for %s", id))
			continue
		}
		if err := check(); err != nil {
			failed = append(failed, id)
			errs = append(errs, fmt.Errorf("capability: %s: %w", id, err))
		}
	}
	return failed, errs
}
