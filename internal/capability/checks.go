package capability

import (
	"fmt"
	"strings"

	"genalg/internal/biql"
	"genalg/internal/core"
	"genalg/internal/db"
	"genalg/internal/etl"
	"genalg/internal/gdt"
	"genalg/internal/genalgxml"
	"genalg/internal/ontology"
	"genalg/internal/sources"
	"genalg/internal/warehouse"
)

// NewChecks wires a live check per GenAlg Table-1 cell. Each check builds
// the minimal scenario exercising the claimed capability end-to-end, so
// running Validate(NewChecks()) regenerates Table 1's GenAlg column from
// evidence.
func NewChecks() map[string]Check {
	return map[string]Check{
		"C1":  checkMultiSourceIntegration,
		"C2":  checkCanonicalRepresentation,
		"C3":  checkSingleAccessPoint,
		"C4":  checkBiologistInterface,
		"C5":  checkQueryLanguagePower,
		"C6":  checkAlgebraOperations,
		"C7":  checkComposableResults,
		"C8":  checkReconciliation,
		"C9":  checkUncertainty,
		"C10": checkMultiSourceMerge,
		"C11": checkAnnotations,
		"C12": checkHighLevelTypes,
		"C13": checkUserData,
		"C14": checkUserDefinedFunctions,
		"C15": checkArchival,
	}
}

func loadedWarehouse(n int, noisyRate float64) (*warehouse.Warehouse, []*sources.Repo, error) {
	w, err := warehouse.Open(2048, etl.NewWrapper(ontology.Standard()))
	if err != nil {
		return nil, nil, err
	}
	repos := []*sources.Repo{
		sources.NewRepo("genbank1", sources.FormatGenBank, sources.CapNonQueryable,
			sources.Generate(777, sources.GenOptions{N: n})),
		sources.NewRepo("embl1", sources.FormatFASTA, sources.CapQueryable,
			sources.Generate(777, sources.GenOptions{N: n, ErrorRate: noisyRate})),
	}
	if _, err := w.InitialLoad(repos); err != nil {
		return nil, nil, err
	}
	return w, repos, nil
}

func checkMultiSourceIntegration() error {
	w, _, err := loadedWarehouse(12, 0.3)
	if err != nil {
		return err
	}
	// One query answers over both sources without the user naming either.
	r, err := w.Query("u", `SELECT COUNT(*) FROM fragments`)
	if err != nil {
		return err
	}
	if r.Rows[0][0].(int64) == 0 {
		return fmt.Errorf("no integrated fragments")
	}
	return nil
}

func checkCanonicalRepresentation() error {
	// Every format lands on the same GDT representation, and GenAlgXML
	// round-trips it.
	wrap := etl.NewWrapper(ontology.Standard())
	recs := sources.Generate(3, sources.GenOptions{N: 3})
	for _, f := range []sources.Format{sources.FormatGenBank, sources.FormatFASTA, sources.FormatACeDB, sources.FormatCSV} {
		parsed, err := sources.Parse(f, sources.Render(f, recs))
		if err != nil {
			return err
		}
		entries, errs := wrap.WrapAll(parsed, "x")
		if len(errs) > 0 {
			return errs[0]
		}
		doc := genalgxml.Document{}
		for _, e := range entries {
			doc.Values = append(doc.Values, e.Value)
		}
		data, err := genalgxml.Marshal(doc)
		if err != nil {
			return err
		}
		back, err := genalgxml.Unmarshal(data)
		if err != nil {
			return err
		}
		for i := range doc.Values {
			if !gdt.Equal(doc.Values[i], back.Values[i]) {
				return fmt.Errorf("GenAlgXML round-trip mismatch for %v", f)
			}
		}
	}
	return nil
}

func checkSingleAccessPoint() error {
	// One endpoint (the warehouse Query method) answers over data that
	// originated from sources in different formats and capabilities.
	w, repos, err := loadedWarehouse(12, 0)
	if err != nil {
		return err
	}
	if len(repos) < 2 || repos[0].Format() == repos[1].Format() {
		return fmt.Errorf("test setup lacks format diversity")
	}
	r, err := w.Query("u", `SELECT COUNT(*) FROM fragments`)
	if err != nil {
		return err
	}
	if r.Rows[0][0].(int64) == 0 {
		return fmt.Errorf("single access point returned nothing")
	}
	return nil
}

func checkBiologistInterface() error {
	w, _, err := loadedWarehouse(9, 0)
	if err != nil {
		return err
	}
	q, err := biql.Parse(`FIND genes SHOW id, protein TOP 2`)
	if err != nil {
		return err
	}
	sql, err := q.ToSQL()
	if err != nil {
		return err
	}
	r, err := w.Query("biologist", sql)
	if err != nil {
		return err
	}
	if len(r.Rows) == 0 {
		return fmt.Errorf("BiQL returned nothing")
	}
	out := biql.Render(q, r.Cols, r.Rows)
	if !strings.Contains(out, "rows)") {
		return fmt.Errorf("renderer produced no table")
	}
	return nil
}

func checkQueryLanguagePower() error {
	w, _, err := loadedWarehouse(9, 0)
	if err != nil {
		return err
	}
	// Aggregation + UDF + ordering in one statement.
	_, err = w.Query("u", `SELECT organism, COUNT(*), AVG(gccontent(fragment)) FROM fragments GROUP BY organism ORDER BY COUNT(*) DESC`)
	return err
}

func checkAlgebraOperations() error {
	w, _, err := loadedWarehouse(9, 0)
	if err != nil {
		return err
	}
	r, err := w.Query("u", `SELECT id, length(translate(splice(transcribe(gene)))) FROM genes LIMIT 1`)
	if err != nil {
		return err
	}
	if len(r.Rows) == 0 || r.Rows[0][1].(int64) == 0 {
		return fmt.Errorf("central dogma produced no protein")
	}
	return nil
}

func checkComposableResults() error {
	// A query result (GDT value) feeds another algebra term directly.
	w, _, err := loadedWarehouse(9, 0)
	if err != nil {
		return err
	}
	r, err := w.Query("u", `SELECT gene FROM genes LIMIT 1`)
	if err != nil {
		return err
	}
	g := r.Rows[0][0].(gdt.Gene)
	term, err := core.ParseTerm(w.Kernel.Sig, "gccontent(geneseq(g))", map[string]core.Sort{"g": "gene"})
	if err != nil {
		return err
	}
	v, err := w.Kernel.Alg.Eval(term, core.Env{"g": g})
	if err != nil {
		return err
	}
	if _, ok := v.(float64); !ok {
		return fmt.Errorf("composition result is %T", v)
	}
	return nil
}

func checkReconciliation() error {
	w, _, err := loadedWarehouse(12, 0.5)
	if err != nil {
		return err
	}
	// Duplicates merged: every entity appears once despite two sources.
	r, err := w.Query("u", `SELECT COUNT(*) FROM fragments`)
	if err != nil {
		return err
	}
	rg, err := w.Query("u", `SELECT COUNT(*) FROM genes`)
	if err != nil {
		return err
	}
	if r.Rows[0][0].(int64)+rg.Rows[0][0].(int64) != 12 {
		return fmt.Errorf("reconciliation failed: %v fragments + %v genes != 12", r.Rows[0][0], rg.Rows[0][0])
	}
	return nil
}

func checkUncertainty() error {
	w, _, err := loadedWarehouse(12, 1)
	if err != nil {
		return err
	}
	// Every conflicting entity retains its alternative.
	r, err := w.Query("u", `SELECT COUNT(*) FROM fragment_alts`)
	if err != nil {
		return err
	}
	if r.Rows[0][0].(int64) == 0 {
		return fmt.Errorf("no alternatives retained under full conflict")
	}
	return nil
}

func checkMultiSourceMerge() error {
	w, _, err := loadedWarehouse(12, 0)
	if err != nil {
		return err
	}
	r, err := w.Query("u", `SELECT COUNT(*) FROM fragments WHERE nsources = 2`)
	if err != nil {
		return err
	}
	if r.Rows[0][0].(int64) == 0 {
		return fmt.Errorf("no multi-source entities")
	}
	return nil
}

func checkAnnotations() error {
	w, _, err := loadedWarehouse(9, 0)
	if err != nil {
		return err
	}
	err = w.CreateUserTable("alice", db.Schema{
		Table: "alice_ann",
		Columns: []db.Column{
			{Name: "id", Type: db.TString},
			{Name: "ann", Type: db.TOpaque, UDTName: "annotation"},
		},
	})
	if err != nil {
		return err
	}
	_, err = w.Query("alice", `INSERT INTO alice_ann VALUES ('a1', annotation('a1', 'SYN000001', 10, 40, 'alice', 'promoter candidate'))`)
	if err != nil {
		return err
	}
	r, err := w.Query("alice", `SELECT ann FROM alice_ann`)
	if err != nil {
		return err
	}
	if _, ok := r.Rows[0][0].(gdt.Annotation); !ok {
		return fmt.Errorf("annotation not stored as GDT")
	}
	return nil
}

func checkHighLevelTypes() error {
	// The shell vocabulary is biological: sorts and operations, not bytes.
	w, _, err := loadedWarehouse(9, 0)
	if err != nil {
		return err
	}
	sorts := w.Kernel.Sig.Sorts()
	want := map[string]bool{"gene": true, "protein": true, "mrna": true}
	for _, s := range sorts {
		delete(want, string(s))
	}
	if len(want) != 0 {
		return fmt.Errorf("missing biological sorts: %v", want)
	}
	return nil
}

func checkUserData() error {
	w, _, err := loadedWarehouse(9, 0)
	if err != nil {
		return err
	}
	err = w.CreateUserTable("alice", db.Schema{
		Table: "alice_own",
		Columns: []db.Column{
			{Name: "id", Type: db.TString},
			{Name: "f", Type: db.TOpaque, UDTName: "dna"},
		},
	})
	if err != nil {
		return err
	}
	if _, err := w.Query("alice", `INSERT INTO alice_own VALUES ('mine', dna('mine', 'ACGTACGTACGT'))`); err != nil {
		return err
	}
	// Self-generated data joins against public data in one query.
	r, err := w.Query("alice", `SELECT a.id, f.id FROM alice_own a, fragments f LIMIT 1`)
	if err != nil {
		return err
	}
	if len(r.Rows) == 0 {
		return fmt.Errorf("user-public join empty")
	}
	return nil
}

func checkUserDefinedFunctions() error {
	w, _, err := loadedWarehouse(9, 0)
	if err != nil {
		return err
	}
	// Register a new evaluation function at runtime and call it from SQL.
	err = w.DB.Funcs.Register(db.ExternalFunc{
		Name: "atcontent", NArgs: 1,
		Fn: func(args []any) (any, error) {
			d, ok := args[0].(gdt.DNA)
			if !ok {
				return nil, fmt.Errorf("atcontent wants dna")
			}
			return 1 - d.Seq.GCContent(), nil
		},
	})
	if err != nil {
		return err
	}
	r, err := w.Query("u", `SELECT atcontent(fragment) FROM fragments LIMIT 1`)
	if err != nil {
		return err
	}
	if _, ok := r.Rows[0][0].(float64); !ok {
		return fmt.Errorf("UDF result type %T", r.Rows[0][0])
	}
	return nil
}

func checkArchival() error {
	w, _, err := loadedWarehouse(9, 0)
	if err != nil {
		return err
	}
	n, err := w.ArchiveSource("genbank1", 1)
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("nothing archived")
	}
	restored, err := w.RestoreFromArchive("genbank1")
	if err != nil {
		return err
	}
	if len(restored) != n {
		return fmt.Errorf("restored %d of %d", len(restored), n)
	}
	return nil
}
