package capability

import (
	"strings"
	"testing"
)

func TestRequirementsComplete(t *testing.T) {
	reqs := Requirements()
	if len(reqs) != 15 {
		t.Fatalf("requirements = %d, want 15", len(reqs))
	}
	for i, r := range reqs {
		want := "C" + itoa(i+1)
		if r.ID != want {
			t.Errorf("req %d id = %s, want %s", i, r.ID, want)
		}
		if r.Title == "" {
			t.Errorf("req %s untitled", r.ID)
		}
	}
}

func itoa(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}

func TestSurveyedSystemsCoverAllCells(t *testing.T) {
	for _, s := range Surveyed() {
		for _, r := range Requirements() {
			if _, ok := s.Cells[r.ID]; !ok {
				t.Errorf("%s missing cell %s", s.Name, r.ID)
			}
		}
		if len(s.Cells) != 15 {
			t.Errorf("%s has %d cells", s.Name, len(s.Cells))
		}
	}
}

func TestPaperShapeHolds(t *testing.T) {
	// The qualitative shape of Table 1: no surveyed system supports C9,
	// C12, or C14; GUS is the only one with archival (C15); GenAlg claims
	// all fifteen.
	m := BuildMatrix()
	for _, s := range m.Systems {
		if s.Name == "GenAlg+UDB" {
			continue
		}
		for _, id := range []string{"C9", "C12", "C14"} {
			if s.Cells[id].Level != None {
				t.Errorf("%s claims %s; the paper says no surveyed system supports it", s.Name, id)
			}
		}
		if id := "C15"; s.Name != "GUS" && s.Cells[id].Level != None {
			t.Errorf("%s claims archival", s.Name)
		}
	}
	// Ranking: GenAlg > GUS > mediators, per the paper's argument.
	genalg, _ := m.Score("GenAlg+UDB")
	gus, _ := m.Score("GUS")
	srs, _ := m.Score("SRS")
	if !(genalg > gus && gus > srs) {
		t.Errorf("score order wrong: genalg=%d gus=%d srs=%d", genalg, gus, srs)
	}
	if genalg != 30 {
		t.Errorf("GenAlg score = %d, want 30 (full support)", genalg)
	}
	if _, err := m.Score("nosuch"); err == nil {
		t.Error("unknown system scored")
	}
}

func TestRenderShowsAllColumns(t *testing.T) {
	m := BuildMatrix()
	out := m.Render()
	for _, name := range m.Names() {
		if !strings.Contains(out, name) {
			t.Errorf("render missing column %s", name)
		}
	}
	for _, r := range Requirements() {
		if !strings.Contains(out, r.ID) {
			t.Errorf("render missing row %s", r.ID)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 17 { // header + separator + 15 rows
		t.Errorf("render lines = %d", len(lines))
	}
}

// TestGenAlgColumnIsValidated is the heart of experiment T1: every cell of
// the GenAlg column is regenerated from a live feature exercise.
func TestGenAlgColumnIsValidated(t *testing.T) {
	failed, errs := Validate(NewChecks())
	for i, id := range failed {
		t.Errorf("claim %s not backed by working code: %v", id, errs[i])
	}
}

func TestValidateDetectsMissingAndFailingChecks(t *testing.T) {
	checks := NewChecks()
	delete(checks, "C9")
	checks["C15"] = func() error { return errString("forced failure") }
	failed, errs := Validate(checks)
	if len(failed) != 2 || len(errs) != 2 {
		t.Fatalf("failed = %v", failed)
	}
	if failed[0] != "C15" && failed[1] != "C15" {
		t.Errorf("forced failure not reported: %v", failed)
	}
}

type errString string

func (e errString) Error() string { return string(e) }
