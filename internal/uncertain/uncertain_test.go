package uncertain

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCertainAndAbsent(t *testing.T) {
	v := Certain(42)
	if !v.IsPresent() || v.Confidence() != 1 {
		t.Errorf("Certain(42) = %v", v)
	}
	if got := v.MustValue(); got != 42 {
		t.Errorf("MustValue = %d", got)
	}
	a := Absent[int]()
	if a.IsPresent() || a.Confidence() != 0 {
		t.Errorf("Absent = %v", a)
	}
	if _, ok := a.Value(); ok {
		t.Error("Absent.Value() reported ok")
	}
}

func TestMustValuePanicsOnAbsent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustValue on absent did not panic")
		}
	}()
	Absent[string]().MustValue()
}

func TestNewClampsConfidence(t *testing.T) {
	if c := New("x", 1.5).Confidence(); c != 1 {
		t.Errorf("clamp high: %v", c)
	}
	if c := New("x", -0.5).Confidence(); c != 0 {
		t.Errorf("clamp low: %v", c)
	}
}

func TestProvenanceIsCopied(t *testing.T) {
	v := Certain(1).WithProvenance("genbank").WithProvenance("etl")
	p := v.Provenance()
	if len(p) != 2 || p[0] != "genbank" || p[1] != "etl" {
		t.Fatalf("Provenance = %v", p)
	}
	p[0] = "mutated"
	if v.Provenance()[0] != "genbank" {
		t.Error("Provenance() aliases internal slice")
	}
}

func TestWithAlternativeSorted(t *testing.T) {
	v := Certain("primary").
		WithAlternative(Alternative[string]{Value: "low", Confidence: 0.2}).
		WithAlternative(Alternative[string]{Value: "high", Confidence: 0.8})
	alts := v.Alternatives()
	if len(alts) != 2 || alts[0].Value != "high" || alts[1].Value != "low" {
		t.Errorf("Alternatives = %v", alts)
	}
}

func TestScaled(t *testing.T) {
	v := New(1, 0.8).Scaled(0.5)
	if math.Abs(v.Confidence()-0.4) > 1e-12 {
		t.Errorf("Scaled = %v", v.Confidence())
	}
}

func TestMapPropagates(t *testing.T) {
	v := New(3, 0.7).WithAlternative(Alternative[int]{Value: 5, Confidence: 0.3})
	u := Map(v, func(x int) int { return x * 2 })
	if got := u.MustValue(); got != 6 {
		t.Errorf("Map primary = %d", got)
	}
	if u.Confidence() != 0.7 {
		t.Errorf("Map confidence = %v", u.Confidence())
	}
	if alts := u.Alternatives(); len(alts) != 1 || alts[0].Value != 10 {
		t.Errorf("Map alternatives = %v", alts)
	}
	if Map(Absent[int](), func(x int) int { return x }).IsPresent() {
		t.Error("Map of absent is present")
	}
}

func TestBindMultipliesConfidence(t *testing.T) {
	v := New(2, 0.5).WithProvenance("src")
	u := Bind(v, func(x int) Val[int] { return New(x+1, 0.5).WithProvenance("step") })
	if got := u.MustValue(); got != 3 {
		t.Errorf("Bind = %d", got)
	}
	if math.Abs(u.Confidence()-0.25) > 1e-12 {
		t.Errorf("Bind confidence = %v", u.Confidence())
	}
	p := u.Provenance()
	if len(p) != 2 || p[0] != "src" || p[1] != "step" {
		t.Errorf("Bind provenance = %v", p)
	}
	if Bind(Absent[int](), func(x int) Val[int] { return Certain(x) }).IsPresent() {
		t.Error("Bind of absent is present")
	}
}

func TestCombineAgreementReinforces(t *testing.T) {
	a := New("ATG", 0.6)
	b := New("ATG", 0.5)
	c := Combine(a, b, func(x, y string) bool { return x == y })
	want := 1 - 0.4*0.5
	if math.Abs(c.Confidence()-want) > 1e-12 {
		t.Errorf("Combine agree confidence = %v, want %v", c.Confidence(), want)
	}
	if c.MustValue() != "ATG" {
		t.Errorf("Combine value = %q", c.MustValue())
	}
}

func TestCombineDisagreementKeepsBoth(t *testing.T) {
	a := New("ATG", 0.6).WithProvenance("genbank")
	b := New("ATC", 0.9).WithProvenance("swissprot")
	c := Combine(a, b, func(x, y string) bool { return x == y })
	if c.MustValue() != "ATC" {
		t.Errorf("winner = %q, want ATC", c.MustValue())
	}
	alts := c.Alternatives()
	if len(alts) != 1 || alts[0].Value != "ATG" || alts[0].Confidence != 0.6 {
		t.Errorf("loser not retained: %v", alts)
	}
	if !strings.Contains(alts[0].Provenance, "genbank") {
		t.Errorf("loser provenance lost: %q", alts[0].Provenance)
	}
}

func TestCombineAbsentCases(t *testing.T) {
	eq := func(x, y int) bool { return x == y }
	v := New(7, 0.3)
	if got := Combine(Absent[int](), v, eq); got.MustValue() != 7 {
		t.Error("Combine(absent, v) lost v")
	}
	if got := Combine(v, Absent[int](), eq); got.MustValue() != 7 {
		t.Error("Combine(v, absent) lost v")
	}
	if Combine(Absent[int](), Absent[int](), eq).IsPresent() {
		t.Error("Combine(absent, absent) present")
	}
}

func TestCombineMergesAlternatives(t *testing.T) {
	a := New(1, 0.9).WithAlternative(Alternative[int]{Value: 10, Confidence: 0.1})
	b := New(1, 0.5).WithAlternative(Alternative[int]{Value: 20, Confidence: 0.2})
	c := Combine(a, b, func(x, y int) bool { return x == y })
	if len(c.Alternatives()) != 2 {
		t.Errorf("merged alternatives = %v", c.Alternatives())
	}
}

func TestBest(t *testing.T) {
	v := New("low", 0.3).WithAlternative(Alternative[string]{Value: "alt", Confidence: 0.7})
	best, conf, ok := v.Best()
	if !ok || best != "alt" || conf != 0.7 {
		t.Errorf("Best = %q %v %v", best, conf, ok)
	}
	if _, _, ok := Absent[string]().Best(); ok {
		t.Error("Best of absent ok")
	}
}

func TestStringRendering(t *testing.T) {
	if s := Absent[int]().String(); s != "<absent>" {
		t.Errorf("absent string = %q", s)
	}
	s := New(5, 0.9).WithAlternative(Alternative[int]{Value: 6, Confidence: 0.1}).String()
	if !strings.Contains(s, "0.90") || !strings.Contains(s, "1 alt") {
		t.Errorf("String = %q", s)
	}
}

// Property: Combine is commutative in value outcome for disagreeing inputs
// (the winner is the max-confidence input regardless of order), and
// confidence of agreement combination is symmetric.
func TestCombineSymmetryProperty(t *testing.T) {
	eq := func(x, y uint8) bool { return x == y }
	f := func(x, y uint8, cx, cy float64) bool {
		a := New(x, math.Abs(math.Mod(cx, 1)))
		b := New(y, math.Abs(math.Mod(cy, 1)))
		ab := Combine(a, b, eq)
		ba := Combine(b, a, eq)
		if math.Abs(ab.Confidence()-ba.Confidence()) > 1e-9 {
			return false
		}
		// Winners must agree unless confidences tie exactly.
		if a.Confidence() != b.Confidence() {
			return ab.MustValue() == ba.MustValue() || x == y
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: confidence always stays in [0,1] through chains of operations.
func TestConfidenceBoundsProperty(t *testing.T) {
	f := func(c1, c2, c3 float64) bool {
		v := New(1, c1).Scaled(c2)
		u := Bind(v, func(x int) Val[int] { return New(x, c3) })
		return u.Confidence() >= 0 && u.Confidence() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
