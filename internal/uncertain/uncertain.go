// Package uncertain implements the uncertainty model required by the paper's
// requirement C9 and Section 4.3: biological results are "inherently
// uncertain and never guaranteed", and when two inconsistent pieces of data
// cannot be arbitrated, "access to both alternatives should be given".
//
// A Val carries a payload together with a confidence in [0,1], a provenance
// trail, and zero or more ranked alternatives. Genomic operations whose
// operational semantics are unknown (the paper's splice example) return Vals
// with multiple alternatives instead of pretending exactness.
package uncertain

import (
	"fmt"
	"sort"
	"strings"
)

// Val is a value of type T attached with a confidence, provenance, and
// alternatives. The zero Val is an absent value with zero confidence.
type Val[T any] struct {
	value      T
	confidence float64
	provenance []string
	alts       []Alternative[T]
	present    bool
}

// Alternative is a competing value with its own confidence.
type Alternative[T any] struct {
	Value      T
	Confidence float64
	Provenance string
}

// Certain wraps v with confidence 1.
func Certain[T any](v T) Val[T] {
	return Val[T]{value: v, confidence: 1, present: true}
}

// New wraps v with the given confidence, clamped to [0,1].
func New[T any](v T, confidence float64) Val[T] {
	return Val[T]{value: v, confidence: clamp01(confidence), present: true}
}

// Absent returns the empty Val: no value, zero confidence.
func Absent[T any]() Val[T] { return Val[T]{} }

func clamp01(c float64) float64 {
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// IsPresent reports whether the Val holds a primary value.
func (v Val[T]) IsPresent() bool { return v.present }

// Value returns the primary value and whether one is present.
func (v Val[T]) Value() (T, bool) { return v.value, v.present }

// MustValue returns the primary value, panicking if absent. Use only where
// presence has been established.
func (v Val[T]) MustValue() T {
	if !v.present {
		panic("uncertain: MustValue on absent Val")
	}
	return v.value
}

// Confidence returns the confidence of the primary value.
func (v Val[T]) Confidence() float64 { return v.confidence }

// Provenance returns the provenance trail (most recent last).
func (v Val[T]) Provenance() []string {
	out := make([]string, len(v.provenance))
	copy(out, v.provenance)
	return out
}

// Alternatives returns the competing values, highest confidence first.
func (v Val[T]) Alternatives() []Alternative[T] {
	out := make([]Alternative[T], len(v.alts))
	copy(out, v.alts)
	return out
}

// WithProvenance returns v with a provenance entry appended.
func (v Val[T]) WithProvenance(source string) Val[T] {
	v.provenance = append(v.Provenance(), source)
	return v
}

// WithAlternative returns v with an additional alternative. Alternatives are
// kept sorted by descending confidence (stable for ties).
func (v Val[T]) WithAlternative(a Alternative[T]) Val[T] {
	alts := append(v.Alternatives(), a)
	sort.SliceStable(alts, func(i, j int) bool { return alts[i].Confidence > alts[j].Confidence })
	v.alts = alts
	return v
}

// Scaled returns v with its confidence multiplied by f (clamped). Scaling
// models propagation through a derivation step of reliability f.
func (v Val[T]) Scaled(f float64) Val[T] {
	v.confidence = clamp01(v.confidence * f)
	return v
}

// String renders the value with its confidence, e.g. "x (conf 0.90, 2 alt)".
func (v Val[T]) String() string {
	if !v.present {
		return "<absent>"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%v (conf %.2f", any(v.value), v.confidence)
	if len(v.alts) > 0 {
		fmt.Fprintf(&sb, ", %d alt", len(v.alts))
	}
	sb.WriteString(")")
	return sb.String()
}

// Map applies f to the primary value and every alternative, propagating
// confidence unchanged. Absent maps to absent.
func Map[T, U any](v Val[T], f func(T) U) Val[U] {
	if !v.present {
		return Absent[U]()
	}
	out := Val[U]{value: f(v.value), confidence: v.confidence, present: true, provenance: v.Provenance()}
	for _, a := range v.alts {
		out.alts = append(out.alts, Alternative[U]{Value: f(a.Value), Confidence: a.Confidence, Provenance: a.Provenance})
	}
	return out
}

// Bind applies a confidence-bearing derivation f to the primary value.
// The result confidence is the product of the input confidence and the
// derived confidence. Alternatives of v are dropped (they would need their
// own derivations); callers that must retain them should Map instead.
func Bind[T, U any](v Val[T], f func(T) Val[U]) Val[U] {
	if !v.present {
		return Absent[U]()
	}
	out := f(v.value)
	out.confidence = clamp01(out.confidence * v.confidence)
	out.provenance = append(v.Provenance(), out.provenance...)
	return out
}

// Combine reconciles two independent observations of the same quantity.
// If the values agree (per eq), confidences reinforce: c = 1-(1-c1)(1-c2).
// If they disagree, the higher-confidence value wins and the loser is kept
// as an alternative — the paper's C9 mandate that both alternatives remain
// accessible.
func Combine[T any](a, b Val[T], eq func(T, T) bool) Val[T] {
	switch {
	case !a.present && !b.present:
		return Absent[T]()
	case !a.present:
		return b
	case !b.present:
		return a
	}
	if eq(a.value, b.value) {
		out := a
		out.confidence = 1 - (1-a.confidence)*(1-b.confidence)
		out.provenance = append(a.Provenance(), b.provenance...)
		// Merge alternatives from both sides.
		for _, alt := range b.alts {
			out = out.WithAlternative(alt)
		}
		return out
	}
	winner, loser := a, b
	if b.confidence > a.confidence {
		winner, loser = b, a
	}
	out := winner.WithAlternative(Alternative[T]{
		Value:      loser.value,
		Confidence: loser.confidence,
		Provenance: strings.Join(loser.provenance, ";"),
	})
	for _, alt := range loser.alts {
		out = out.WithAlternative(alt)
	}
	return out
}

// Best returns the most confident value among the primary and all
// alternatives. For a present Val the primary always has the highest
// confidence by construction of Combine, but hand-built Vals may differ.
func (v Val[T]) Best() (T, float64, bool) {
	if !v.present {
		var zero T
		return zero, 0, false
	}
	best, conf := v.value, v.confidence
	for _, a := range v.alts {
		if a.Confidence > conf {
			best, conf = a.Value, a.Confidence
		}
	}
	return best, conf, true
}
