// Package atest is the fixture-driven golden-test harness for genalgvet
// analyzers — the role analysistest plays for x/tools checkers. A fixture
// lives under the analyzer's testdata/src/<pkg>/ directory in GOPATH-style
// layout; fixture files annotate the lines a diagnostic must land on:
//
//	pg, err := pool.Pin(id) // want `not released on every path`
//
// Each `want` argument is a quoted Go string holding a regexp that must
// match the diagnostic message; several on one line expect several
// diagnostics in order. Lines without a want comment must produce no
// diagnostics. //genalgvet:ignore directives are honoured exactly as the
// real driver honours them, so suppression fixtures assert driver
// behaviour too.
//
// Fixture packages may import sibling fixture packages ("storage",
// "trace", ...) which resolve inside testdata/src, or standard-library
// packages, which resolve through the go/types source importer — the
// harness never needs export data or network access.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"genalg/internal/analysis"
)

// shared caches one source importer (and its FileSet) per test binary:
// re-type-checking the stdlib from source for every fixture would
// dominate test time.
var shared struct {
	mu   sync.Mutex
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*fixturePkg // keyed by root + "\x00" + path
}

type fixturePkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

type fixtureImporter struct {
	root string
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(fi.root, path); dirExists(dir) {
		fp := loadFixtureLocked(fi.root, path)
		return fp.pkg, fp.err
	}
	return shared.std.Import(path)
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// loadFixtureLocked parses and type-checks testdata/src/<path>; shared.mu
// must be held.
func loadFixtureLocked(root, path string) *fixturePkg {
	key := root + "\x00" + path
	if fp, ok := shared.pkgs[key]; ok {
		return fp
	}
	fp := &fixturePkg{}
	shared.pkgs[key] = fp
	dir := filepath.Join(root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		fp.err = err
		return fp
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fp.err = fmt.Errorf("no Go files in %s", dir)
		return fp
	}
	for _, name := range names {
		f, err := parser.ParseFile(shared.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			fp.err = err
			return fp
		}
		fp.files = append(fp.files, f)
	}
	fp.info = analysis.NewInfo()
	conf := types.Config{Importer: &fixtureImporter{root: root}}
	fp.pkg, fp.err = conf.Check(path, shared.fset, fp.files, fp.info)
	return fp
}

// Load type-checks the fixture package testdata/src/<path> under
// testdataDir and returns it as an analysis.Package.
func Load(t *testing.T, testdataDir, path string) *analysis.Package {
	t.Helper()
	shared.mu.Lock()
	defer shared.mu.Unlock()
	if shared.fset == nil {
		shared.fset = token.NewFileSet()
		shared.std = importer.ForCompiler(shared.fset, "source", nil)
		shared.pkgs = map[string]*fixturePkg{}
	}
	root, err := filepath.Abs(filepath.Join(testdataDir, "src"))
	if err != nil {
		t.Fatal(err)
	}
	fp := loadFixtureLocked(root, path)
	if fp.err != nil {
		t.Fatalf("loading fixture %s: %v", path, fp.err)
	}
	return &analysis.Package{
		Fset:      shared.fset,
		Files:     fp.files,
		Pkg:       fp.pkg,
		TypesInfo: fp.info,
	}
}

// computeFactsLocked derives the analyzers' facts for the fixture
// package at path, recursing into sibling fixture imports first so
// cross-package summaries work exactly as they do in the real drivers.
// shared.mu must be held.
func computeFactsLocked(root, path string, computers []*analysis.FactComputer) (*analysis.FactSet, error) {
	fp := loadFixtureLocked(root, path)
	if fp.err != nil {
		return nil, fp.err
	}
	imported := analysis.NewFactSet()
	for _, dep := range fp.pkg.Imports() {
		if !dirExists(filepath.Join(root, dep.Path())) {
			continue // stdlib import: no facts
		}
		dfs, err := computeFactsLocked(root, dep.Path(), computers)
		if err != nil {
			return nil, err
		}
		imported.Merge(dfs)
	}
	pkg := &analysis.Package{Fset: shared.fset, Files: fp.files, Pkg: fp.pkg, TypesInfo: fp.info}
	return analysis.ComputeFacts(pkg, imported, computers)
}

// Run loads the fixture package, computes the analyzers' facts (so
// interprocedural checks see summaries for the fixture and its sibling
// imports), and checks the diagnostics against its // want annotations.
func Run(t *testing.T, testdataDir, path string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkg := Load(t, testdataDir, path)
	if computers := analysis.Computers(analyzers); len(computers) > 0 {
		shared.mu.Lock()
		root, err := filepath.Abs(filepath.Join(testdataDir, "src"))
		if err == nil {
			pkg.Facts, err = computeFactsLocked(root, path, computers)
		}
		shared.mu.Unlock()
		if err != nil {
			t.Fatalf("computing facts for %s: %v", path, err)
		}
	}
	diags, err := analysis.Run(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", path, err)
	}
	known := map[string]bool{"genalgvet": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	diags = analysis.FilterIgnored(pkg, diags, known)

	wants := parseWants(t, pkg)
	got := map[string][]analysis.Diagnostic{}
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
		got[key] = append(got[key], d)
	}
	for key, res := range wants {
		ds := got[key]
		if len(ds) != len(res) {
			t.Errorf("%s: want %d diagnostic(s), got %d: %v", key, len(res), len(ds), messages(ds))
			continue
		}
		for i, re := range res {
			if !re.MatchString(ds[i].Message) {
				t.Errorf("%s: diagnostic %q does not match want %q", key, ds[i].Message, re)
			}
		}
	}
	for key, ds := range got {
		if _, ok := wants[key]; !ok {
			t.Errorf("%s: unexpected diagnostic(s): %v", key, messages(ds))
		}
	}
}

func messages(ds []analysis.Diagnostic) []string {
	var out []string
	for _, d := range ds {
		out = append(out, "["+d.Analyzer+"] "+d.Message)
	}
	return out
}

// parseWants extracts the `// want "re" ...` annotations, keyed by
// "file.go:line".
func parseWants(t *testing.T, pkg *analysis.Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := map[string][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments not supported for wants
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
				for _, re := range parseWantArgs(t, key, rest) {
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

// parseWantArgs splits `"re1" "re2"` / backquoted forms into compiled
// regexps.
func parseWantArgs(t *testing.T, key, s string) []*regexp.Regexp {
	t.Helper()
	var out []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		var lit string
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s: unterminated want string: %s", key, s)
			}
			var err error
			lit, err = strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want string %s: %v", key, s[:end+1], err)
			}
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want string: %s", key, s)
			}
			lit = s[1 : 1+end]
			s = strings.TrimSpace(s[2+end:])
		default:
			t.Fatalf("%s: want arguments must be quoted strings: %s", key, s)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", key, lit, err)
		}
		out = append(out, re)
	}
	return out
}
