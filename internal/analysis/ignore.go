package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// IgnorePrefix is the directive that suppresses a genalgvet diagnostic:
//
//	//genalgvet:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the flagged line or on the line directly above it. The reason
// is mandatory: an ignore without one is itself reported, so every
// suppression in the tree documents why the invariant does not apply.
// "all" matches every analyzer.
const IgnorePrefix = "genalgvet:ignore"

type ignoreDirective struct {
	pos       token.Pos
	line      int
	analyzers []string // lowercase names, or ["all"]
	hasReason bool
	used      bool // suppressed at least one diagnostic this run
}

// parseIgnores collects every //genalgvet:ignore directive in the files.
func parseIgnores(fset *token.FileSet, files []*ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+IgnorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				d := ignoreDirective{pos: c.Pos(), line: fset.Position(c.Pos()).Line}
				if len(fields) > 0 {
					for _, name := range strings.Split(fields[0], ",") {
						if name != "" {
							d.analyzers = append(d.analyzers, strings.ToLower(name))
						}
					}
					d.hasReason = len(fields) > 1
				}
				out = append(out, d)
			}
		}
	}
	return out
}

func (d ignoreDirective) matches(analyzer string) bool {
	for _, a := range d.analyzers {
		if a == "all" || a == analyzer {
			return true
		}
	}
	return false
}

// FilterIgnored drops diagnostics suppressed by //genalgvet:ignore
// directives and appends a diagnostic (analyzer "genalgvet") for every
// malformed directive: unknown analyzer name, missing analyzer list, or
// missing reason. known maps valid analyzer names; pass nil to skip name
// validation.
func FilterIgnored(pkg *Package, diags []Diagnostic, known map[string]bool) []Diagnostic {
	return filterIgnored(pkg, diags, known, false)
}

// AuditIgnored is FilterIgnored plus staleness checking: every
// well-formed directive that suppressed no diagnostic in this run is
// itself reported, so suppressions cannot outlive the code (or the
// analyzer bug) they were written for. This is what `genalgvet
// -audit-ignores` runs.
func AuditIgnored(pkg *Package, diags []Diagnostic, known map[string]bool) []Diagnostic {
	return filterIgnored(pkg, diags, known, true)
}

func filterIgnored(pkg *Package, diags []Diagnostic, known map[string]bool, audit bool) []Diagnostic {
	directives := parseIgnores(pkg.Fset, pkg.Files)
	if len(directives) == 0 {
		return diags
	}
	byLine := map[string][]*ignoreDirective{} // "file:line" -> directives
	lineKey := func(pos token.Pos) string {
		p := pkg.Fset.Position(pos)
		return p.Filename + ":" + strconv.Itoa(p.Line)
	}
	var kept []Diagnostic
	var wellFormed []*ignoreDirective
	for i := range directives {
		d := &directives[i]
		switch {
		case len(d.analyzers) == 0:
			kept = append(kept, Diagnostic{
				Pos:      d.pos,
				Analyzer: "genalgvet",
				Message:  "malformed ignore: want //" + IgnorePrefix + " <analyzer> <reason>",
			})
			continue
		case !d.hasReason:
			kept = append(kept, Diagnostic{
				Pos:      d.pos,
				Analyzer: "genalgvet",
				Message:  "ignore directive for " + strings.Join(d.analyzers, ",") + " is missing a reason",
			})
			continue
		}
		if known != nil {
			bad := ""
			for _, a := range d.analyzers {
				if a != "all" && !known[a] {
					bad = a
					break
				}
			}
			if bad != "" {
				kept = append(kept, Diagnostic{
					Pos:      d.pos,
					Analyzer: "genalgvet",
					Message:  "ignore directive names unknown analyzer " + bad,
				})
				continue
			}
		}
		key := lineKey(d.pos)
		byLine[key] = append(byLine[key], d)
		wellFormed = append(wellFormed, d)
	}
	for _, diag := range diags {
		p := pkg.Fset.Position(diag.Pos)
		suppressed := false
		for _, line := range []int{p.Line, p.Line - 1} {
			for _, d := range byLine[p.Filename+":"+strconv.Itoa(line)] {
				if d.matches(diag.Analyzer) {
					suppressed = true
					d.used = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, diag)
		}
	}
	if audit {
		for _, d := range wellFormed {
			if !d.used {
				kept = append(kept, Diagnostic{
					Pos:      d.pos,
					Analyzer: "genalgvet",
					Message: "stale ignore: directive for " + strings.Join(d.analyzers, ",") +
						" suppresses no diagnostic (the flagged code changed or the check did); remove it",
				})
			}
		}
	}
	return kept
}
