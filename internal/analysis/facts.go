package analysis

import (
	"encoding/json"
	"fmt"
	"sort"

	"genalg/internal/analysis/pathflow"
)

// FactSet is the cross-package side-channel: per-domain maps of opaque
// JSON entries keyed by fully qualified function (or lock, or whatever
// the domain chooses) names. In vettool mode one FactSet is serialized
// per package into the file cmd/go names in VetxOutput and read back for
// every import through PackageVetx — the same channel x/tools facts use.
// Entries are transitive: a package's exported set contains its imports'
// entries merged with its own, so readers never chase the import graph.
type FactSet struct {
	domains map[string]map[string]json.RawMessage

	pathflowOnce bool
	pathflow     *pathflow.Summaries
}

// factFile is the on-disk JSON shape.
type factFile struct {
	Version int                                   `json:"genalgvet_facts"`
	Domains map[string]map[string]json.RawMessage `json:"domains,omitempty"`
}

// factVersion guards the vetx encoding; bump on incompatible change (the
// CI cache key covers this source, so stale files never cross versions).
const factVersion = 1

// NewFactSet returns an empty set.
func NewFactSet() *FactSet {
	return &FactSet{domains: map[string]map[string]json.RawMessage{}}
}

// DecodeFactSet parses a serialized FactSet. Empty input (including the
// zero-byte files pre-facts genalgvet versions wrote) decodes to an
// empty set rather than an error.
func DecodeFactSet(data []byte) (*FactSet, error) {
	fs := NewFactSet()
	if len(data) == 0 {
		return fs, nil
	}
	var file factFile
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, fmt.Errorf("decoding facts: %w", err)
	}
	if file.Version != factVersion {
		// Older or newer writer: treat as no facts, never as corruption.
		return fs, nil
	}
	for domain, entries := range file.Domains {
		fs.domains[domain] = entries
	}
	return fs, nil
}

// Encode serializes the set for the vetx file.
func (fs *FactSet) Encode() ([]byte, error) {
	return json.Marshal(factFile{Version: factVersion, Domains: fs.domains})
}

// Domain returns the entries recorded under name (nil-safe; may be nil).
func (fs *FactSet) Domain(name string) map[string]json.RawMessage {
	if fs == nil {
		return nil
	}
	return fs.domains[name]
}

// SetDomain replaces the entries recorded under name.
func (fs *FactSet) SetDomain(name string, entries map[string]json.RawMessage) {
	fs.domains[name] = entries
}

// Merge unions other's entries into fs (other wins on key collisions —
// collisions only happen for identical fully-qualified names, which
// denote the same declaration).
func (fs *FactSet) Merge(other *FactSet) {
	if other == nil {
		return
	}
	for domain, entries := range other.domains {
		dst := fs.domains[domain]
		if dst == nil {
			dst = map[string]json.RawMessage{}
			fs.domains[domain] = dst
		}
		for k, v := range entries {
			dst[k] = v
		}
	}
}

// Domains lists the populated domain names, sorted (for tests).
func (fs *FactSet) Domains() []string {
	if fs == nil {
		return nil
	}
	var out []string
	for name := range fs.domains {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Pathflow decodes (once) and returns the pathflow summaries carried in
// the set. Nil-safe: with no facts it returns nil, and a nil *Summaries
// looks up nothing — analyzers degrade to PR-5 intraprocedural behaviour.
func (fs *FactSet) Pathflow() *pathflow.Summaries {
	if fs == nil {
		return nil
	}
	if !fs.pathflowOnce {
		fs.pathflowOnce = true
		if entries := fs.domains["pathflow"]; entries != nil {
			sums, err := pathflow.DecodeEntries(entries)
			if err == nil {
				fs.pathflow = sums
			}
		}
	}
	return fs.pathflow
}

// FactComputer derives one domain's entries for a package. Compute
// receives the merged facts of the package's imports and returns the
// full transitive entry map to record (imports' entries plus local
// ones); the driver stores it under Domain.
type FactComputer struct {
	Domain  string
	Compute func(pkg *Package, imported *FactSet) (map[string]json.RawMessage, error)
}

// PathflowFacts computes per-function release/escape summaries; the
// pinunpin, spanend, and durability analyzers consume them.
var PathflowFacts = &FactComputer{
	Domain: "pathflow",
	Compute: func(pkg *Package, imported *FactSet) (map[string]json.RawMessage, error) {
		sums := pathflow.ComputeSummaries(pkg.Files, pkg.TypesInfo, imported.Pathflow())
		return sums.EncodeEntries()
	},
}

// Computers collects the analyzers' fact computers, deduplicated by
// domain (analyzers share computers; pinunpin and spanend both declare
// PathflowFacts).
func Computers(analyzers []*Analyzer) []*FactComputer {
	var out []*FactComputer
	seen := map[string]bool{}
	for _, a := range analyzers {
		for _, c := range a.Facts {
			if c != nil && !seen[c.Domain] {
				seen[c.Domain] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// ComputeFacts runs computers over pkg with the imports' merged facts
// and returns the package's own transitive set: imported entries plus
// everything computed locally. Attach the result to Package.Facts before
// Run, and serialize it for dependents in vettool mode.
func ComputeFacts(pkg *Package, imported *FactSet, computers []*FactComputer) (*FactSet, error) {
	out := NewFactSet()
	out.Merge(imported)
	for _, c := range computers {
		entries, err := c.Compute(pkg, imported)
		if err != nil {
			return nil, fmt.Errorf("computing %s facts for %s: %w", c.Domain, pkg.Pkg.Path(), err)
		}
		out.SetDomain(c.Domain, entries)
	}
	return out, nil
}
