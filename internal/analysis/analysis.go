// Package analysis is a dependency-free re-implementation of the core of
// golang.org/x/tools/go/analysis, sized for this repository's needs: an
// Analyzer runs over one type-checked package at a time and reports
// position-tagged diagnostics. The build environment bakes in only the Go
// toolchain and the standard library, so rather than importing x/tools we
// keep the same shape (Analyzer, Pass, Reportf) on top of go/ast and
// go/types; analyzers written against this package read exactly like
// stock vet passes and could be ported to x/tools by changing imports.
//
// Cross-package knowledge arrives two ways: through types (export data)
// and, since genalgvet v2, through a facts side-channel (FactSet): an
// analyzer may declare FactComputers whose per-package output — e.g.
// pathflow's per-function release summaries — is serialized into the
// vetx file cmd/go caches per package and fed back to every dependent,
// making the path-sensitive checks interprocedural. Analyzer-to-analyzer
// result dependencies (x/tools' Requires) remain deliberately absent.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //genalgvet:ignore directives. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph help text (first line is the summary).
	Doc string
	// Run applies the check to one package. Diagnostics go through
	// pass.Reportf; the error return is for operational failures only
	// (a failing analyzer aborts the run, a finding does not).
	Run func(*Pass) error
	// Facts lists the fact domains this analyzer consumes; the driver
	// computes them per package (bottom-up over the import graph) and
	// exposes the merged result as Pass.Facts.
	Facts []*FactComputer
}

// Pass carries one package's worth of inputs to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts carries the package's fact set (imports' facts merged with
	// locally computed ones). Nil when the driver computed no facts; the
	// FactSet accessors are nil-safe, so analyzers read it unguarded and
	// degrade to intraprocedural behaviour.
	Facts *FactSet

	report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Package is the unit handed to Run: a parsed, type-checked package.
type Package struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts is the package's fact set (see ComputeFacts); nil is valid
	// and means "no interprocedural knowledge".
	Facts *FactSet
}

// NewInfo allocates a types.Info with every map analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Run applies analyzers to pkg and returns the diagnostics sorted by
// position. Ignore directives are NOT applied here (see FilterIgnored);
// tests use the raw stream to assert that suppression is a separate,
// driver-level concern.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
			Facts:     pkg.Facts,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Pkg.Path(), err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
