package pathflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"testing"
)

// check parses and type-checks one file as package path.
func check(t *testing.T, path, src string) ([]*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check(path, fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	return []*ast.File{f}, info
}

// The summarizer credits all-paths releases (directly and through the
// in-package fixpoint), refuses conditional and recursion-only releases,
// and records durability wait points.
func TestComputeSummaries(t *testing.T) {
	files, info := check(t, "storage", `
package storage

type PageID uint32
type BufferPool struct{}

func (bp *BufferPool) Unpin(id PageID, dirty bool) error { return nil }

func release(bp *BufferPool, id PageID)  { _ = bp.Unpin(id, true) }
func chained(bp *BufferPool, id PageID)  { release(bp, id) }
func maybe(bp *BufferPool, id PageID, ok bool) {
	if ok {
		_ = bp.Unpin(id, false)
	}
}
func recur(bp *BufferPool, id PageID) { recur(bp, id) }

type Log struct{}

func (l *Log) WaitDurable(lsn int64) error { return nil }

func syncTo(l *Log, lsn int64) error {
	if l == nil {
		return nil
	}
	return l.WaitDurable(lsn)
}

func runIt(f func()) { f() }
`)
	sums := ComputeSummaries(files, info, nil)

	want := map[string][][2]int{
		"storage.release": {{0, 1}},
		"storage.chained": {{0, 1}},
		"storage.maybe":   nil,
		"storage.recur":   nil,
	}
	for key, pins := range want {
		sum, ok := sums.fns[key]
		if !ok {
			t.Fatalf("no summary for %s (have %v)", key, sums.Keys())
		}
		if !reflect.DeepEqual(sum.Pins, pins) {
			t.Errorf("%s: Pins = %v, want %v", key, sum.Pins, pins)
		}
	}
	if sum := sums.fns["storage.syncTo"]; !reflect.DeepEqual(sum.Waits, []int{1}) {
		t.Errorf("syncTo: Waits = %v, want [1]", sum.Waits)
	}
	if sum := sums.fns["storage.runIt"]; !reflect.DeepEqual(sum.Calls, []int{0}) {
		t.Errorf("runIt: Calls = %v, want [0]", sum.Calls)
	}
}

// Summaries survive the facts-channel JSON round trip.
func TestSummariesRoundTrip(t *testing.T) {
	s := NewSummaries()
	s.fns["p.f"] = &FuncSummary{Pins: [][2]int{{0, 1}}, Waits: []int{2}}
	s.fns["p.g"] = &FuncSummary{Spans: []int{0}, SpanEscapes: []int{1}, Calls: []int{2}}
	s.fns["p.empty"] = &FuncSummary{}

	entries, err := s.EncodeEntries()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeEntries(entries)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Keys(), s.Keys()) {
		t.Fatalf("keys: %v != %v", back.Keys(), s.Keys())
	}
	for k, want := range s.fns {
		if got := back.fns[k]; !reflect.DeepEqual(got, want) {
			t.Errorf("%s: %+v != %+v", k, got, want)
		}
	}
	// Presence of an empty summary distinguishes known from unknown.
	if _, ok := back.fns["p.empty"]; !ok {
		t.Error("empty summary lost in round trip")
	}
}

// Imported summaries carry through ComputeSummaries into the output set.
func TestComputeSummariesImports(t *testing.T) {
	imported := NewSummaries()
	imported.fns["dep.Release"] = &FuncSummary{Pins: [][2]int{{0, 1}}}

	files, info := check(t, "empty", "package empty\n")
	out := ComputeSummaries(files, info, imported)
	if _, ok := out.fns["dep.Release"]; !ok {
		t.Error("imported summary not carried into output set")
	}
}
