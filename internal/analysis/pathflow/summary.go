// Interprocedural summaries. A FuncSummary records, per declared
// function, which parameters the function releases on behalf of its
// caller: a helper that calls Unpin(pool, id) on every path discharges
// the caller's pin obligation; a helper that ends (or hands off) a span
// parameter discharges the span obligation; a helper that invokes a
// func-typed parameter discharges a stop-func obligation; a helper that
// passes an int64 parameter to WaitDurable is a durability wait point.
//
// Summaries are computed bottom-up: within one package, a fixpoint
// iteration lets helper chains resolve (A releases via B which releases
// directly); across packages, the driver feeds each package's summaries
// forward through the facts side-channel (see analysis.FactSet), so a
// cross-package helper discharges obligations exactly like a local one.
//
// The defaults are conservative: a function is summarized as releasing a
// parameter only when the release is proven on every path, and an
// unknown callee (no summary — external, indirect, or recursive without
// a base-case release) never discharges anything. Recursion is handled
// by the same rule: a function whose only "release" is the recursive
// call never reaches a fixpoint entry, so it is not credited.
package pathflow

import (
	"encoding/json"
	"go/ast"
	"go/types"
	"sort"
)

// FuncSummary describes the caller-visible release behaviour of one
// function in terms of its parameter indices (0-based, receiver not
// counted).
type FuncSummary struct {
	// Pins lists {pool, id} parameter-index pairs for which the function
	// calls pool.Unpin(id, ...) (directly or via a summarized callee) on
	// every path.
	Pins [][2]int `json:"pins,omitempty"`
	// Spans lists span/timer parameter indices ended on every path.
	Spans []int `json:"spans,omitempty"`
	// SpanEscapes lists span parameter indices the function may hand
	// onward (stored, returned, sent, or passed to an unsummarized
	// callee): the new owner carries the obligation, so the caller's is
	// discharged, but the end is not proven here.
	SpanEscapes []int `json:"span_escapes,omitempty"`
	// Calls lists func-typed parameter indices invoked on every path
	// (stop funcs, callbacks).
	Calls []int `json:"calls,omitempty"`
	// Waits lists int64 parameter indices passed to a WaitDurable call:
	// the function is a durability wait point for that LSN.
	Waits []int `json:"waits,omitempty"`
}

func (s *FuncSummary) hasPin(pool, id int) bool {
	for _, p := range s.Pins {
		if p[0] == pool && p[1] == id {
			return true
		}
	}
	return false
}

func hasIdx(list []int, i int) bool {
	for _, v := range list {
		if v == i {
			return true
		}
	}
	return false
}

// Summaries maps types.Func.FullName() keys to summaries. Every function
// declaration the analysis has seen gets an entry, even an empty one —
// presence distinguishes a known callee (proven to release nothing extra)
// from an unknown one (anything could happen; assume nothing).
type Summaries struct {
	fns map[string]*FuncSummary
}

// NewSummaries returns an empty summary set.
func NewSummaries() *Summaries { return &Summaries{fns: map[string]*FuncSummary{}} }

// FuncKey is the summary key for fn: its fully qualified name.
func FuncKey(fn *types.Func) string { return fn.FullName() }

// Lookup returns the summary recorded for fn. Nil-safe: a nil receiver
// (no facts available) knows no functions.
func (s *Summaries) Lookup(fn *types.Func) (*FuncSummary, bool) {
	if s == nil || fn == nil {
		return nil, false
	}
	sum, ok := s.fns[FuncKey(fn)]
	return sum, ok
}

// LookupCall resolves call's static callee and returns its summary.
func (s *Summaries) LookupCall(info *types.Info, call *ast.CallExpr) (*FuncSummary, bool) {
	return s.Lookup(calleeFunc(info, call))
}

// EncodeEntries serializes each summary for the facts side-channel.
func (s *Summaries) EncodeEntries() (map[string]json.RawMessage, error) {
	out := make(map[string]json.RawMessage, len(s.fns))
	for key, sum := range s.fns {
		data, err := json.Marshal(sum)
		if err != nil {
			return nil, err
		}
		out[key] = data
	}
	return out, nil
}

// DecodeEntries rebuilds a summary set from facts-channel entries.
func DecodeEntries(entries map[string]json.RawMessage) (*Summaries, error) {
	s := NewSummaries()
	for key, data := range entries {
		sum := &FuncSummary{}
		if err := json.Unmarshal(data, sum); err != nil {
			return nil, err
		}
		s.fns[key] = sum
	}
	return s, nil
}

// Keys returns the summarized function names, sorted (for tests).
func (s *Summaries) Keys() []string {
	if s == nil {
		return nil
	}
	keys := make([]string, 0, len(s.fns))
	for k := range s.fns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CheckAllPaths verifies the obligation from the top of fn: every path
// from function entry to exit must release. This is the entry point the
// summarizer uses (the "acquisition" is taking the parameter).
func (o *Obligation) CheckAllPaths(fn ast.Node) (leak *Leak, ok bool) {
	_, body := funcParts(fn)
	if body == nil || containsGoto(body) {
		return nil, false
	}
	o.errLive = o.ErrVar != nil
	c := &checker{o: o}
	st, term := c.scanList(body.List, state{}, false)
	if c.leak != nil {
		return c.leak, true
	}
	if term || st.discharged {
		return nil, true
	}
	return &Leak{At: body, Kind: "function end"}, true
}

// ComputeSummaries summarizes every function declared in files,
// iterating to a fixpoint so same-package helper chains resolve.
// imported carries dependency summaries (nil for none); the returned set
// contains imported and local entries, ready for transitive export.
func ComputeSummaries(files []*ast.File, info *types.Info, imported *Summaries) *Summaries {
	out := NewSummaries()
	if imported != nil {
		for k, v := range imported.fns {
			out.fns[k] = v
		}
	}

	type decl struct {
		fd     *ast.FuncDecl
		sum    *FuncSummary
		params []types.Object // flattened in signature order; nil for unnamed
	}
	var decls []decl
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sum := &FuncSummary{}
			out.fns[FuncKey(obj)] = sum
			decls = append(decls, decl{fd: fd, sum: sum, params: paramObjs(info, fd)})
		}
	}

	// All summary facts are monotone (sets only grow, bounded by the
	// parameter count), so iterate until a full round adds nothing.
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			if summarizeFunc(d.fd, d.sum, d.params, info, out) {
				changed = true
			}
		}
	}
	return out
}

// paramObjs flattens fn's declared parameters to their objects.
func paramObjs(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			out = append(out, info.Defs[name])
		}
	}
	return out
}

// summarizeFunc re-derives fd's summary against the current summary set,
// reporting whether anything was added.
func summarizeFunc(fd *ast.FuncDecl, sum *FuncSummary, params []types.Object, info *types.Info, all *Summaries) bool {
	changed := false

	// Pin pairs: (pool, id) both released by Unpin on all paths.
	for pi, pool := range params {
		if pool == nil || !isBufferPool(pool.Type()) {
			continue
		}
		for ki, id := range params {
			if id == nil || !isPageID(id.Type()) || sum.hasPin(pi, ki) {
				continue
			}
			ob := &Obligation{Info: info, Releases: pinReleaser(info, all, pool, id)}
			if leak, ok := ob.CheckAllPaths(fd); ok && leak == nil {
				sum.Pins = append(sum.Pins, [2]int{pi, ki})
				changed = true
			}
		}
	}

	// Spans ended on all paths; otherwise, spans that escape.
	for si, sp := range params {
		if sp == nil || !isSpanish(sp.Type()) {
			continue
		}
		if !hasIdx(sum.Spans, si) {
			ob := &Obligation{Info: info, Releases: spanReleaser(info, all, sp)}
			if leak, ok := ob.CheckAllPaths(fd); ok && leak == nil {
				sum.Spans = append(sum.Spans, si)
				changed = true
			}
		}
		if !hasIdx(sum.Spans, si) && !hasIdx(sum.SpanEscapes, si) && escapesAnywhere(fd.Body, info, all, sp) {
			sum.SpanEscapes = append(sum.SpanEscapes, si)
			changed = true
		}
	}

	// Func-typed parameters invoked on all paths (stop funcs, callbacks).
	for fi, fp := range params {
		if fp == nil || hasIdx(sum.Calls, fi) {
			continue
		}
		if _, ok := fp.Type().Underlying().(*types.Signature); !ok {
			continue
		}
		ob := &Obligation{Info: info, Releases: callReleaser(info, all, fp)}
		if leak, ok := ob.CheckAllPaths(fd); ok && leak == nil {
			sum.Calls = append(sum.Calls, fi)
			changed = true
		}
	}

	// Durability wait points: an int64 parameter passed to WaitDurable
	// anywhere in the body. Deliberately exists-path, not all-paths: the
	// idiomatic helper guards on a nil WAL (nothing to wait for), and the
	// all-paths rigor lives at the AppendTxn acquisition site.
	for wi, wp := range params {
		if wp == nil || hasIdx(sum.Waits, wi) || !isInt64(wp.Type()) {
			continue
		}
		if waitsAnywhere(fd.Body, info, all, wp) {
			sum.Waits = append(sum.Waits, wi)
			changed = true
		}
	}
	return changed
}

// pinReleaser matches bp.Unpin(id, ...) and summarized callees that do.
func pinReleaser(info *types.Info, all *Summaries, pool, id types.Object) func(*ast.CallExpr) bool {
	return func(call *ast.CallExpr) bool {
		if isMethodNamed(info, call, "storage", "BufferPool", "Unpin") {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			return ok && len(call.Args) >= 1 &&
				identIsObj(info, sel.X, pool) && identIsObj(info, call.Args[0], id)
		}
		if sum, ok := all.LookupCall(info, call); ok {
			for _, pr := range sum.Pins {
				if pr[0] < len(call.Args) && pr[1] < len(call.Args) &&
					identIsObj(info, call.Args[pr[0]], pool) && identIsObj(info, call.Args[pr[1]], id) {
					return true
				}
			}
		}
		return false
	}
}

// endMethodNames are the span methods that retire a span (mirrors the
// spanend analyzer's set).
var endMethodNames = map[string]bool{"End": true, "EndOK": true, "EndSpan": true}

// spanReleaser matches sp.End()/EndOK/EndSpan, summarized callees that
// end or absorb the span, and summarized callees invoking a method value
// like sp.End passed as a callback.
func spanReleaser(info *types.Info, all *Summaries, sp types.Object) func(*ast.CallExpr) bool {
	return func(call *ast.CallExpr) bool {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && endMethodNames[sel.Sel.Name] &&
			identIsObj(info, sel.X, sp) {
			return true
		}
		sum, ok := all.LookupCall(info, call)
		if !ok {
			return false
		}
		for i, arg := range call.Args {
			if identIsObj(info, arg, sp) && (hasIdx(sum.Spans, i) || hasIdx(sum.SpanEscapes, i)) {
				return true
			}
			if hasIdx(sum.Calls, i) && isEndMethodValue(info, arg, sp) {
				return true
			}
		}
		return false
	}
}

// callReleaser matches f() and summarized callees invoking f.
func callReleaser(info *types.Info, all *Summaries, fp types.Object) func(*ast.CallExpr) bool {
	return func(call *ast.CallExpr) bool {
		if identIsObj(info, call.Fun, fp) {
			return true
		}
		if sum, ok := all.LookupCall(info, call); ok {
			for _, i := range sum.Calls {
				if i < len(call.Args) && identIsObj(info, call.Args[i], fp) {
					return true
				}
			}
		}
		return false
	}
}

// isEndMethodValue reports whether e is a method value sp.End / sp.EndOK
// / sp.EndSpan on the span object.
func isEndMethodValue(info *types.Info, e ast.Expr, sp types.Object) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	return ok && endMethodNames[sel.Sel.Name] && identIsObj(info, sel.X, sp)
}

// escapesAnywhere reports whether obj is handed onward somewhere in body:
// returned, assigned (not to _), sent on a channel, placed in a composite
// literal, or passed to a callee with no summary (unknown — assume it
// keeps the value) or one summarized as ending/escaping that parameter.
func escapesAnywhere(body *ast.BlockStmt, info *types.Info, all *Summaries, obj types.Object) bool {
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if mentionsObj(info, r, obj) {
					escaped = true
				}
			}
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				if i < len(n.Lhs) && isBlankIdent(n.Lhs[i]) {
					continue
				}
				if mentionsObj(info, r, obj) {
					escaped = true
				}
			}
		case *ast.SendStmt:
			if mentionsObj(info, n.Value, obj) {
				escaped = true
			}
		case *ast.CompositeLit:
			if mentionsObj(info, n, obj) {
				escaped = true
			}
		case *ast.CallExpr:
			sum, known := all.LookupCall(info, n)
			for i, arg := range n.Args {
				if !identIsObj(info, arg, obj) {
					continue
				}
				if !known || hasIdx(sum.Spans, i) || hasIdx(sum.SpanEscapes, i) {
					escaped = true
				}
			}
		}
		return !escaped
	})
	return escaped
}

// waitsAnywhere reports whether obj reaches a WaitDurable call (or a
// summarized wait point) somewhere in body.
func waitsAnywhere(body *ast.BlockStmt, info *types.Info, all *Summaries, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn != nil && fn.Name() == "WaitDurable" &&
			len(call.Args) >= 1 && identIsObj(info, call.Args[0], obj) {
			found = true
			return false
		}
		if sum, ok := all.Lookup(fn); ok {
			for _, i := range sum.Waits {
				if i < len(call.Args) && identIsObj(info, call.Args[i], obj) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// --- type predicates ---

func isBufferPool(t types.Type) bool {
	p, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	return namedIn(p.Elem(), "storage", "BufferPool")
}

func isPageID(t types.Type) bool { return namedIn(t, "storage", "PageID") }

// isSpanish matches the span-like types the spanend analyzer tracks:
// *trace.Span and the value type obs.Span.
func isSpanish(t types.Type) bool {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		return namedIn(p.Elem(), "trace", "Span")
	}
	return namedIn(t, "obs", "Span")
}

func isInt64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int64
}

// namedIn reports whether t is the named type pkgName.typeName, with the
// package matched by path suffix (so fixture packages' flat paths work).
func namedIn(t types.Type, pkgName, typeName string) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && pkgPathIs(obj.Pkg().Path(), pkgName)
}

// --- local AST helpers (pathflow cannot import package analysis: the
// analysis package imports pathflow for the facts plumbing) ---

func pkgPathIs(path, name string) bool {
	if path == name {
		return true
	}
	return len(path) > len(name)+1 && path[len(path)-len(name)-1] == '/' && path[len(path)-len(name):] == name
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

func isMethodNamed(info *types.Info, call *ast.CallExpr, pkgName, typeName, method string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != method {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := types.Unalias(sig.Recv().Type())
	if p, ok := recv.(*types.Pointer); ok {
		recv = types.Unalias(p.Elem())
	}
	n, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && pkgPathIs(obj.Pkg().Path(), pkgName)
}

func identIsObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	return info.Uses[id] == obj || info.Defs[id] == obj
}

func mentionsObj(info *types.Info, n ast.Node, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
			found = true
		}
		return true
	})
	return found
}

func isBlankIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}
