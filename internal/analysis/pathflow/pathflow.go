// Package pathflow implements the conservative all-paths release check
// behind the pinunpin and spanend analyzers: given "resource acquired at
// statement S inside function F", it verifies that every execution path
// from S to an exit of F observes a release (directly, via defer, or by
// handing the resource off).
//
// The analysis is structural, not CFG-based: it walks the statement tree,
// threading a "discharged" bit through sequences and merging it across
// branches. That trades completeness for zero dependencies and very few
// false positives on idiomatic Go:
//
//   - defer release (including `defer func() { r.End(err) }()`) discharges
//     the rest of the function;
//   - an `if err != nil` branch on the acquisition's own error variable is
//     exempt (the resource was never acquired on that path), until err is
//     reassigned;
//   - loops are treated optimistically (a release inside a loop body counts
//     for the code after it), and an acquisition *inside* a loop body must
//     be discharged by the end of the iteration, since the next iteration
//     re-acquires;
//   - goto is rare enough here that a function containing one is skipped.
package pathflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Obligation configures one acquisition's release requirement.
type Obligation struct {
	Info *types.Info
	// Releases reports whether this call discharges the obligation.
	Releases func(call *ast.CallExpr) bool
	// Escapes reports whether the resource escapes at this statement or
	// return (stored, passed on, returned) — escaped resources are the
	// next owner's problem, not a leak here. May be nil.
	Escapes func(n ast.Node) bool
	// ErrVar is the error variable produced by the acquisition, if any:
	// branches taken only when ErrVar != nil are exempt from the
	// obligation. Cleared internally once ErrVar is reassigned.
	ErrVar types.Object

	errLive bool
}

// Leak describes the first path found that drops the resource.
type Leak struct {
	// At is the exiting node: a return statement, a branch statement, or
	// (for "function end") the whole function body whose closing brace is
	// reached undischarged. Use At.End() to name the exit line.
	At ast.Node
	// Kind is "return", "loop iteration end", "loop branch", or
	// "function end".
	Kind string
}

type state struct {
	discharged bool
}

type checker struct {
	o    *Obligation
	leak *Leak
}

// Check verifies the obligation for the acquisition statement acq inside
// function fn (*ast.FuncDecl or *ast.FuncLit). It returns the first leak
// found, or nil. ok=false means the function shape is outside the
// analysis (goto present, acquisition not found in a statement list) and
// no conclusion should be drawn.
func (o *Obligation) Check(fn ast.Node, acq ast.Stmt) (leak *Leak, ok bool) {
	_, body := funcParts(fn)
	if body == nil {
		return nil, false
	}
	if containsGoto(body) {
		return nil, false
	}
	o.errLive = o.ErrVar != nil
	c := &checker{o: o}

	// spine: the chain of statement lists from the function body down to
	// the list that contains acq, with the index of the followed entry.
	type level struct {
		list       []ast.Stmt
		idx        int
		inLoop     bool // this list is (inside) a loop body enclosing acq
		isLoopBody bool // this list IS a loop body enclosing acq
		procEnd    bool // falling off this list ends the function
	}
	var spine []level
	var build func(list []ast.Stmt, inLoop, isLoopBody, procEnd bool) bool
	build = func(list []ast.Stmt, inLoop, isLoopBody, procEnd bool) bool {
		for i, s := range list {
			if s == acq {
				spine = append(spine, level{list, i, inLoop, isLoopBody, procEnd})
				return true
			}
			for _, sub := range subLists(s) {
				if build(sub.list, inLoop || sub.loop, sub.loop, false) {
					spine = append(spine, level{list, i, inLoop, isLoopBody, procEnd})
					return true
				}
			}
		}
		return false
	}
	if !build(body.List, false, false, true) {
		return nil, false
	}
	// spine is innermost-first; walk it outermost-last. Scan the
	// innermost list from just after acq; each enclosing list resumes
	// after the statement that contained the inner list.
	st := state{}
	for li := 0; li < len(spine); li++ {
		lv := spine[li]
		var term bool
		st, term = c.scanList(lv.list[lv.idx+1:], st, lv.inLoop)
		if c.leak != nil {
			return c.leak, true
		}
		if term || st.discharged {
			return nil, true
		}
		if lv.isLoopBody {
			// End of an enclosing loop iteration with the resource still
			// held: the next iteration re-acquires. Report at the last
			// statement of the iteration (or the acquisition itself).
			at := ast.Node(acq)
			if n := len(lv.list); n > 0 {
				at = lv.list[n-1]
			}
			return &Leak{At: at, Kind: "loop iteration end"}, true
		}
		if lv.procEnd {
			// Fell off the end of the function body undischarged. Only a
			// leak if the end of the body is reachable, which the
			// traversal just established.
			return &Leak{At: body, Kind: "function end"}, true
		}
	}
	return nil, true
}

// scanList walks stmts with incoming state st. It reports the state after
// the list falls through and whether every path through the list
// terminated (returned). iterExit marks a list whose fall-through leaves a
// loop iteration that re-acquires.
func (c *checker) scanList(stmts []ast.Stmt, st state, iterExit bool) (out state, terminated bool) {
	for _, s := range stmts {
		if c.leak != nil {
			return st, false
		}
		var term bool
		st, term = c.scanStmt(s, st, iterExit)
		if term {
			return st, true
		}
	}
	return st, false
}

func (c *checker) scanStmt(s ast.Stmt, st state, iterExit bool) (out state, terminated bool) {
	if c.o.errLive && assignsTo(c.o.Info, s, c.o.ErrVar) && !isAcquisitionLike(s) {
		// err reassigned: `if err != nil` no longer refers to the
		// acquisition's outcome. (Release calls often reuse err, so check
		// for the release first.)
		if !c.stmtReleases(s) {
			c.o.errLive = false
		}
	}
	switch s := s.(type) {
	case *ast.DeferStmt:
		if c.callTreeReleases(s.Call) {
			st.discharged = true
		}
		return st, false
	case *ast.ReturnStmt:
		// `return pool.Unpin(id, true)` both releases and exits.
		if !st.discharged && !c.stmtReleases(s) && !c.escapes(s) {
			c.leak = &Leak{At: s, Kind: "return"}
		}
		return st, true
	case *ast.BranchStmt:
		if s.Tok == token.GOTO {
			// Unreachable: Check refuses functions with goto.
			return st, true
		}
		if s.Tok == token.FALLTHROUGH {
			// The next case body is scanned with the same input state;
			// ending the clause here is the conservative reading.
			return st, true
		}
		// break/continue: leaving the iteration. If an enclosing loop
		// re-acquires and we are undischarged, that is a leak.
		if iterExit && !st.discharged {
			c.leak = &Leak{At: s, Kind: "loop branch"}
		}
		return st, true
	case *ast.BlockStmt:
		return c.scanList(s.List, st, iterExit)
	case *ast.LabeledStmt:
		return c.scanStmt(s.Stmt, st, iterExit)
	case *ast.IfStmt:
		return c.scanIf(s, st, iterExit)
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = c.scanStmt(s.Init, st, iterExit)
		}
		body, _ := c.scanList(s.Body.List, st, false)
		if body.discharged {
			st.discharged = true
		}
		return st, false
	case *ast.RangeStmt:
		if c.stmtReleases(&ast.ExprStmt{X: s.X}) {
			st.discharged = true
		}
		body, _ := c.scanList(s.Body.List, st, false)
		if body.discharged {
			st.discharged = true
		}
		return st, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.scanCases(s, st, iterExit)
	case *ast.GoStmt:
		if c.callTreeReleases(s.Call) {
			// Released (eventually) by the spawned goroutine: ownership
			// handed off.
			st.discharged = true
		}
		return st, false
	default:
		// Expression, assignment, declaration, send, inc/dec...
		if c.stmtReleases(s) {
			st.discharged = true
		} else if !st.discharged && c.escapes(s) {
			st.discharged = true
		}
		return st, false
	}
}

func (c *checker) scanIf(s *ast.IfStmt, st state, iterExit bool) (out state, terminated bool) {
	if s.Init != nil {
		st, _ = c.scanStmt(s.Init, st, iterExit)
	}
	exemptThen, exemptElse := c.errBranch(s.Cond)

	thenIn := st
	if exemptThen {
		thenIn.discharged = true
	}
	thenOut, thenTerm := c.scanList(s.Body.List, thenIn, iterExit)
	if c.leak != nil {
		return st, false
	}

	elseIn := st
	if exemptElse {
		elseIn.discharged = true
	}
	var elseOut state
	var elseTerm bool
	switch e := s.Else.(type) {
	case nil:
		elseOut, elseTerm = elseIn, false
	case *ast.BlockStmt:
		elseOut, elseTerm = c.scanList(e.List, elseIn, iterExit)
	case *ast.IfStmt:
		elseOut, elseTerm = c.scanIf(e, elseIn, iterExit)
	}
	if c.leak != nil {
		return st, false
	}

	switch {
	case thenTerm && elseTerm:
		return st, true
	case thenTerm:
		return elseOut, false
	case elseTerm:
		return thenOut, false
	default:
		return state{discharged: thenOut.discharged && elseOut.discharged}, false
	}
}

func (c *checker) scanCases(s ast.Stmt, st state, iterExit bool) (out state, terminated bool) {
	var clauses []ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = c.scanStmt(s.Init, st, iterExit)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = c.scanStmt(s.Init, st, iterExit)
		}
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	merged := state{discharged: true}
	anyFall := false
	for _, cl := range clauses {
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			body = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			body = cl.Body
		}
		// NOTE: fallthrough between cases is folded into the per-clause
		// scan; a `fallthrough` statement simply ends the clause here,
		// which is conservative in the safe direction.
		clOut, clTerm := c.scanList(body, st, iterExit)
		if c.leak != nil {
			return st, false
		}
		if !clTerm {
			anyFall = true
			merged.discharged = merged.discharged && clOut.discharged
		}
	}
	if _, isSelect := s.(*ast.SelectStmt); !hasDefault && !isSelect {
		// No default: the zero-case path falls through untouched.
		anyFall = true
		merged.discharged = merged.discharged && st.discharged
	}
	if !anyFall && len(clauses) > 0 {
		return st, true
	}
	return merged, false
}

// errBranch classifies an if condition against the live acquisition error:
// (true, false) for `err != nil` (then-branch exempt), (false, true) for
// `err == nil` (else/fall-through exempt).
func (c *checker) errBranch(cond ast.Expr) (exemptThen, exemptElse bool) {
	if !c.o.errLive {
		return false, false
	}
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false, false
	}
	var other ast.Expr
	switch {
	case isIdentFor(c.o.Info, be.X, c.o.ErrVar):
		other = be.Y
	case isIdentFor(c.o.Info, be.Y, c.o.ErrVar):
		other = be.X
	default:
		return false, false
	}
	if id, ok := ast.Unparen(other).(*ast.Ident); !ok || id.Name != "nil" {
		return false, false
	}
	switch be.Op {
	case token.NEQ:
		return true, false
	case token.EQL:
		return false, true
	}
	return false, false
}

func (c *checker) stmtReleases(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && c.o.Releases(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

func (c *checker) callTreeReleases(call *ast.CallExpr) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if found {
			return false
		}
		if inner, ok := n.(*ast.CallExpr); ok && c.o.Releases(inner) {
			found = true
			return false
		}
		return true
	})
	return found
}

func (c *checker) escapes(n ast.Node) bool {
	return c.o.Escapes != nil && c.o.Escapes(n)
}

// assignsTo reports whether stmt (re)assigns obj anywhere in its tree.
func assignsTo(info *types.Info, stmt ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if isIdentFor(info, lhs, obj) {
				found = true
			}
		}
		return true
	})
	return found
}

// isAcquisitionLike is a hook kept false; the acquisition statement itself
// is never re-scanned (scanning starts after it).
func isAcquisitionLike(ast.Stmt) bool { return false }

func isIdentFor(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	if use, ok := info.Uses[id]; ok {
		return use == obj
	}
	if def, ok := info.Defs[id]; ok {
		return def == obj
	}
	return false
}

type sub struct {
	list []ast.Stmt
	loop bool
}

// subLists returns the nested statement lists of s through which an
// acquisition statement can be reached, tagging loop bodies.
func subLists(s ast.Stmt) []sub {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return []sub{{s.List, false}}
	case *ast.LabeledStmt:
		return subLists(s.Stmt)
	case *ast.IfStmt:
		out := []sub{{s.Body.List, false}}
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			out = append(out, sub{e.List, false})
		case *ast.IfStmt:
			out = append(out, sub{[]ast.Stmt{e}, false})
		}
		return out
	case *ast.ForStmt:
		return []sub{{s.Body.List, true}}
	case *ast.RangeStmt:
		return []sub{{s.Body.List, true}}
	case *ast.SwitchStmt:
		return caseBodies(s.Body)
	case *ast.TypeSwitchStmt:
		return caseBodies(s.Body)
	case *ast.SelectStmt:
		return caseBodies(s.Body)
	}
	return nil
}

func caseBodies(body *ast.BlockStmt) []sub {
	var out []sub
	for _, cl := range body.List {
		switch cl := cl.(type) {
		case *ast.CaseClause:
			out = append(out, sub{cl.Body, false})
		case *ast.CommClause:
			out = append(out, sub{cl.Body, false})
		}
	}
	return out
}

func containsGoto(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate function: its gotos are its own
		case *ast.BranchStmt:
			if n.Tok == token.GOTO {
				found = true
			}
		}
		return true
	})
	return found
}

func funcParts(fn ast.Node) (*ast.FuncType, *ast.BlockStmt) {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Type, fn.Body
	case *ast.FuncLit:
		return fn.Type, fn.Body
	}
	return nil, nil
}
