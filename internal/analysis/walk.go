package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// WalkStack traverses every node of every file, passing the enclosing-node
// stack (outermost first, NOT including n itself). Returning false skips
// the node's children.
func WalkStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			if !fn(n, stack) {
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}

// PkgIs reports whether the package path denotes the project package with
// the given terminal name. It matches both the real import path
// ("genalg/internal/storage") and the flat paths fixture packages use in
// analyzer tests ("storage").
func PkgIs(path, name string) bool {
	return path == name || strings.HasSuffix(path, "/"+name)
}

// CalleeFunc resolves the *types.Func a call invokes (package function or
// method), or nil for indirect calls, conversions, and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// IsMethodCall reports whether call invokes a method with the given name on
// a named type (or pointer to it) declared in a project package matching
// pkgName (see PkgIs), e.g. IsMethodCall(info, call, "storage",
// "BufferPool", "Pin").
func IsMethodCall(info *types.Info, call *ast.CallExpr, pkgName, typeName, method string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != method {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := NamedRecv(sig.Recv().Type())
	if named == nil {
		return false
	}
	obj := named.Obj()
	if obj.Name() != typeName || obj.Pkg() == nil {
		return false
	}
	return PkgIs(obj.Pkg().Path(), pkgName)
}

// IsPkgFuncCall reports whether call invokes the package-level function
// pkgName.funcName (project-suffix matching via PkgIs).
func IsPkgFuncCall(info *types.Info, call *ast.CallExpr, pkgName string, funcNames ...string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	if fn.Pkg() == nil || !PkgIs(fn.Pkg().Path(), pkgName) {
		return false
	}
	for _, name := range funcNames {
		if fn.Name() == name {
			return true
		}
	}
	return false
}

// NamedRecv unwraps pointers and aliases down to the receiver's named
// type, or nil.
func NamedRecv(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// ConstString returns the compile-time constant string value of expr, if
// it has one.
func ConstString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return "", false
	}
	if tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	n, _ := types.Unalias(t).(*types.Named)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// EnclosingFunc returns the innermost function literal or declaration in
// stack (the stack as provided by WalkStack), or nil.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// FuncParts splits a function node into its type and body.
func FuncParts(fn ast.Node) (*ast.FuncType, *ast.BlockStmt) {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Type, fn.Body
	case *ast.FuncLit:
		return fn.Type, fn.Body
	}
	return nil, nil
}
