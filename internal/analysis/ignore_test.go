package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseForIgnores builds the minimal Package FilterIgnored consumes: a
// parsed file with comments, no type information.
func parseForIgnores(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Fset: fset, Files: []*ast.File{f}}
}

// diagAt fabricates a diagnostic at the start of the given 1-based line.
func diagAt(pkg *Package, line int, analyzer string) Diagnostic {
	tf := pkg.Fset.File(pkg.Files[0].Pos())
	return Diagnostic{Pos: tf.LineStart(line), Analyzer: analyzer, Message: "boom"}
}

const ignoreSrc = `package p

func a() {} //genalgvet:ignore lockio the lock protects exactly this read

//genalgvet:ignore pinunpin,spanend the pin escapes into the returned iterator
func b() {}

func c() {} //genalgvet:ignore lockio

//genalgvet:ignore
func d() {}

func e() {} //genalgvet:ignore nosuchpass some reason

//genalgvet:ignore all test fixture exercises every analyzer at once
func f() {}
`

var ignoreKnown = map[string]bool{"lockio": true, "pinunpin": true, "spanend": true}

func TestFilterIgnoredSuppresses(t *testing.T) {
	pkg := parseForIgnores(t, ignoreSrc)
	diags := []Diagnostic{
		diagAt(pkg, 3, "lockio"),   // same-line directive
		diagAt(pkg, 6, "pinunpin"), // line-above directive, multi-analyzer
		diagAt(pkg, 6, "spanend"),  // second analyzer of the same directive
		diagAt(pkg, 16, "lockio"),  // "all" matches every analyzer
	}
	got := FilterIgnored(pkg, diags, ignoreKnown)
	// The three malformed directives (lines 8, 10, 13) surface as
	// genalgvet diagnostics; every fabricated finding is suppressed.
	if len(got) != 3 {
		t.Fatalf("got %d diagnostics, want 3 malformed-directive reports:\n%v", len(got), got)
	}
	for _, d := range got {
		if d.Analyzer != "genalgvet" {
			t.Errorf("survivor %q from %s, want only genalgvet malformed-directive reports", d.Message, d.Analyzer)
		}
	}
}

func TestFilterIgnoredMalformedDirectives(t *testing.T) {
	pkg := parseForIgnores(t, ignoreSrc)
	got := FilterIgnored(pkg, nil, ignoreKnown)
	wantByLine := map[int]string{
		8:  "missing a reason",
		10: "malformed ignore",
		13: "unknown analyzer nosuchpass",
	}
	if len(got) != len(wantByLine) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(got), len(wantByLine), got)
	}
	for _, d := range got {
		line := pkg.Fset.Position(d.Pos).Line
		want, ok := wantByLine[line]
		if !ok {
			t.Errorf("unexpected diagnostic at line %d: %s", line, d.Message)
			continue
		}
		if !strings.Contains(d.Message, want) {
			t.Errorf("line %d: message %q does not mention %q", line, d.Message, want)
		}
	}
}

func TestFilterIgnoredMismatchKept(t *testing.T) {
	pkg := parseForIgnores(t, ignoreSrc)
	// A spanend finding on line 3 is NOT covered by the lockio directive.
	got := FilterIgnored(pkg, []Diagnostic{diagAt(pkg, 3, "spanend")}, ignoreKnown)
	kept := 0
	for _, d := range got {
		if d.Analyzer == "spanend" {
			kept++
		}
	}
	if kept != 1 {
		t.Errorf("mismatched-analyzer finding suppressed: %v", got)
	}
}

func TestFilterIgnoredNilKnownSkipsNameValidation(t *testing.T) {
	pkg := parseForIgnores(t, ignoreSrc)
	got := FilterIgnored(pkg, []Diagnostic{diagAt(pkg, 13, "nosuchpass")}, nil)
	// With known == nil the unknown-analyzer directive is honoured, so the
	// finding it covers is suppressed and no unknown-name report appears.
	for _, d := range got {
		if d.Analyzer == "nosuchpass" || strings.Contains(d.Message, "unknown analyzer") {
			t.Errorf("nil known map: unexpected diagnostic %s: %s", d.Analyzer, d.Message)
		}
	}
}
