package metricname_test

import (
	"testing"

	"genalg/internal/analysis/atest"
	"genalg/internal/analysis/passes/metricname"
)

func TestMetricName(t *testing.T) {
	atest.Run(t, "testdata", "a", metricname.Analyzer)
}
