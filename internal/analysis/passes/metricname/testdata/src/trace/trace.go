// Package trace is a fixture stand-in for genalg/internal/trace.
package trace

import "context"

// Span mimics the real nil-safe span handle.
type Span struct{}

// Start begins a child span.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}

// EndOK retires the span successfully.
func (s *Span) EndOK() {}
