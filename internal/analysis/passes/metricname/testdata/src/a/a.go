// Package a holds metricname positive and negative cases.
package a

import (
	"context"
	"fmt"

	"obs"
	"trace"
)

const poolMetric = "storage.pool.hits"

func good(r *obs.Registry, ctx context.Context) {
	r.Counter("etl.rounds").Inc()
	r.Histogram("sqlang.query.seconds")
	r.GaugeFunc("warehouse.quarantine.records", func() float64 { return 0 })
	_ = r.Timer("etl.poll.seconds")
	r.Gauge(poolMetric)
	// Planner and batched-executor counters stamped by the sqlang engine.
	r.Counter("sqlang.plan.cbo").Inc()
	r.Counter("sqlang.plan.hash_joins").Inc()
	r.Counter("sqlang.plan.reordered").Inc()
	r.Counter("sqlang.batch.count").Inc()
	r.Counter("sqlang.batch.rows").Inc()
	_ = obs.StartSpan(r, "align.batch.seconds")
	_, sp := trace.Start(ctx, "warehouse.apply_deltas")
	sp.EndOK()
}

func badCase(r *obs.Registry) {
	r.Counter("ETL.Rounds") // want `metric name "ETL\.Rounds" does not follow the layer\.noun\[\.unit\] convention`
}

func tooFewSegments(r *obs.Registry) {
	r.Gauge("etl") // want `metric name "etl" does not follow`
}

func tooManySegments(r *obs.Registry) {
	r.Histogram("a.b.c.d.e") // want `metric name "a\.b\.c\.d\.e" does not follow`
}

func badSpanName(ctx context.Context) {
	_, sp := trace.Start(ctx, "Apply Deltas") // want `trace span name "Apply Deltas" does not follow`
	sp.EndOK()
}

func dynamicName(r *obs.Registry, source string) {
	r.Counter(fmt.Sprintf("etl.%s.rows", source)).Inc() // want `dynamic metric name: use a constant string or build it with obs\.Join`
}

func joinedName(r *obs.Registry, source string) {
	r.Counter(obs.Join("etl.source", source, "rows")).Inc()
}

func joinedBadSegment(r *obs.Registry, source string) {
	r.Counter(obs.Join("ETL-Source", source)).Inc() // want `obs\.Join segment "ETL-Source" does not follow the lowercase dotted convention`
}

func suppressed(r *obs.Registry) {
	//genalgvet:ignore metricname fixture: legacy dashboard name kept for continuity
	r.Counter("Legacy_Series").Inc()
}
