// Package obs is a fixture stand-in for genalg/internal/obs.
package obs

import (
	"strings"
	"time"
)

// Registry mimics the metrics registry.
type Registry struct{}

// Counter is a fixture counter.
type Counter struct{}

// Inc bumps the counter.
func (c *Counter) Inc() {}

// Gauge is a fixture gauge.
type Gauge struct{}

// Histogram is a fixture histogram.
type Histogram struct{}

// Span mimics the histogram-backed timing span.
type Span struct{}

// End retires the span.
func (s Span) End() time.Duration { return 0 }

// Counter registers or fetches a counter.
func (r *Registry) Counter(name string) *Counter { return &Counter{} }

// Gauge registers or fetches a gauge.
func (r *Registry) Gauge(name string) *Gauge { return &Gauge{} }

// GaugeFunc registers a computed gauge.
func (r *Registry) GaugeFunc(name string, fn func() float64) {}

// Histogram registers or fetches a histogram.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram { return &Histogram{} }

// Timer returns a stop func recording elapsed seconds.
func (r *Registry) Timer(name string) func() time.Duration {
	return func() time.Duration { return 0 }
}

// StartSpan begins timing against r.
func StartSpan(r *Registry, name string) Span { return Span{} }

// Join builds a dotted metric name, dropping empty parts.
func Join(parts ...string) string { return strings.Join(parts, ".") }
