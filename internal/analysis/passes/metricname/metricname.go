// Package metricname defines the genalgvet analyzer that keeps metric
// and trace-span names greppable. Every dashboard query, slow-query-log
// filter, and EXPLAIN ANALYZE row keys on names like
// "sqlang.query.seconds"; a name assembled with fmt.Sprintf or typo-cased
// segments silently forks the time series. The analyzer requires names
// passed to obs.Registry constructors, obs.StartSpan, and trace.Start to
// be compile-time constants matching the layer.noun[.unit] convention
// (2-4 lowercase dotted segments). Dynamic names must go through
// obs.Join, whose constant segments are still checked.
package metricname

import (
	"go/ast"
	"regexp"

	"genalg/internal/analysis"
)

// nameRE is the layer.noun[.unit] convention: 2-4 lowercase segments.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*){1,3}$`)

// partRE covers constant obs.Join segments: 1+ lowercase dotted parts.
var partRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$`)

// registryCtors are the Registry methods whose first argument names a
// time series.
var registryCtors = []string{"Counter", "Gauge", "GaugeFunc", "Histogram", "Timer"}

// Analyzer is the metricname check.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "check that obs metric and trace span names are constant strings following layer.noun[.unit]\n\n" +
		"Names must match " + nameRE.String() + ". Dynamic names must be built with obs.Join; " +
		"its constant segments are checked against the same lowercase dotted form.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
			// The obs and trace packages themselves plumb caller-supplied
			// names through; only call sites are checked.
			return true
		}
		switch {
		case isRegistryCtor(pass, call):
			checkName(pass, call.Args[0], "metric")
		case analysis.IsPkgFuncCall(pass.TypesInfo, call, "obs", "StartSpan") && len(call.Args) >= 2:
			checkName(pass, call.Args[1], "metric")
		case analysis.IsPkgFuncCall(pass.TypesInfo, call, "trace", "Start") && len(call.Args) >= 2:
			checkName(pass, call.Args[1], "trace span")
		}
		return true
	})
	return nil
}

func isRegistryCtor(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	for _, m := range registryCtors {
		if analysis.IsMethodCall(pass.TypesInfo, call, "obs", "Registry", m) {
			return true
		}
	}
	return false
}

func checkName(pass *analysis.Pass, arg ast.Expr, kind string) {
	if val, ok := analysis.ConstString(pass.TypesInfo, arg); ok {
		if !nameRE.MatchString(val) {
			pass.Reportf(arg.Pos(), "%s name %q does not follow the layer.noun[.unit] convention (2-4 lowercase dotted segments)", kind, val)
		}
		return
	}
	if join, ok := ast.Unparen(arg).(*ast.CallExpr); ok &&
		analysis.IsPkgFuncCall(pass.TypesInfo, join, "obs", "Join") {
		for _, part := range join.Args {
			if val, ok := analysis.ConstString(pass.TypesInfo, part); ok && !partRE.MatchString(val) {
				pass.Reportf(part.Pos(), "obs.Join segment %q does not follow the lowercase dotted convention", val)
			}
		}
		return
	}
	pass.Reportf(arg.Pos(), "dynamic %s name: use a constant string or build it with obs.Join", kind)
}
