package deadline_test

import (
	"testing"

	"genalg/internal/analysis/atest"
	"genalg/internal/analysis/passes/deadline"
)

func TestDeadline(t *testing.T) {
	atest.Run(t, "testdata", "a", deadline.Analyzer)
}
