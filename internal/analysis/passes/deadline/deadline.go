// Package deadline defines the genalgvet analyzer that keeps network
// operations time-bounded. The wire protocol and daemon (PR 8) promise
// that a stalled or malicious peer cannot pin a goroutine forever; that
// only holds when every conn read/write runs under a deadline.
//
// Rules, applied outside _test.go files:
//
//   - net.Dial blocks without bound: use net.DialTimeout (or a
//     net.Dialer with Timeout).
//   - A read on a net.Conn (Conn.Read, or wire.ReadRequest/ReadFrame
//     handed the conn) must be preceded — lexically, within the
//     enclosing declaration — by SetReadDeadline or SetDeadline on the
//     same expression. Writes (Conn.Write, wire.WriteMessage/WriteFrame)
//     need SetWriteDeadline or SetDeadline likewise.
//   - An http.Server composite literal without ReadHeaderTimeout or
//     ReadTimeout, and the http.ListenAndServe shortcuts (which cannot
//     carry timeouts at all), are slowloris-vulnerable.
//
// The lexical approximation is deliberate: arming happens in the same
// function as the I/O everywhere in this codebase (the genalgd request
// loop re-arms per iteration), and a path-insensitive "deadline set
// somewhere above" rule stays explainable in a diagnostic.
package deadline

import (
	"go/ast"
	"go/types"
	"strings"

	"genalg/internal/analysis"
)

// Analyzer is the deadline check.
var Analyzer = &analysis.Analyzer{
	Name: "deadline",
	Doc: "check that dials, conn reads, and conn writes are bounded by deadlines\n\n" +
		"Reads need a prior SetReadDeadline/SetDeadline on the same conn expression, writes a " +
		"SetWriteDeadline/SetDeadline; net.Dial and timeout-less http servers are flagged directly.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.CompositeLit); ok {
				checkServerLit(pass, lit)
			}
			return true
		})
	}
	return nil
}

// checkFunc walks one declaration in source order, tracking which conn
// expressions have been armed with read/write deadlines.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	armedRead := map[string]bool{}
	armedWrite := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		checkCall(pass, call, armedRead, armedWrite)
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, armedRead, armedWrite map[string]bool) {
	info := pass.TypesInfo

	// Arming.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isConn(info, sel.X) {
		expr := types.ExprString(sel.X)
		switch sel.Sel.Name {
		case "SetDeadline":
			armedRead[expr] = true
			armedWrite[expr] = true
			return
		case "SetReadDeadline":
			armedRead[expr] = true
			return
		case "SetWriteDeadline":
			armedWrite[expr] = true
			return
		case "Read":
			if !armedRead[expr] {
				pass.Reportf(call.Pos(), "read on %s without a read deadline: a silent peer pins this goroutine forever (SetReadDeadline first)", expr)
			}
			return
		case "Write":
			if !armedWrite[expr] {
				pass.Reportf(call.Pos(), "write on %s without a write deadline: a stalled peer pins this goroutine forever (SetWriteDeadline first)", expr)
			}
			return
		}
	}

	// wire framing helpers handed a raw conn.
	if len(call.Args) >= 1 && isConn(info, call.Args[0]) {
		expr := types.ExprString(ast.Unparen(call.Args[0]))
		if analysis.IsPkgFuncCall(info, call, "wire", "ReadRequest", "ReadFrame") && !armedRead[expr] {
			pass.Reportf(call.Pos(), "wire read from %s without a read deadline: a silent peer pins this goroutine forever (SetReadDeadline first)", expr)
			return
		}
		if analysis.IsPkgFuncCall(info, call, "wire", "WriteMessage", "WriteFrame") && !armedWrite[expr] {
			pass.Reportf(call.Pos(), "wire write to %s without a write deadline: a stalled peer pins this goroutine forever (SetWriteDeadline first)", expr)
			return
		}
	}

	// Unbounded dials and timeout-less HTTP servers.
	if fn := analysis.CalleeFunc(info, call); fn != nil && fn.Pkg() != nil {
		switch {
		case fn.Pkg().Path() == "net" && fn.Name() == "Dial" && recvName(fn) == "":
			pass.Reportf(call.Pos(), "net.Dial blocks without bound: use net.DialTimeout or a net.Dialer with Timeout")
		case fn.Pkg().Path() == "net/http" && (fn.Name() == "ListenAndServe" || fn.Name() == "ListenAndServeTLS") && recvName(fn) == "":
			pass.Reportf(call.Pos(), "http.%s serves with no timeouts at all: construct an http.Server with ReadHeaderTimeout set", fn.Name())
		}
	}
}

// checkServerLit flags http.Server literals with neither ReadTimeout nor
// ReadHeaderTimeout.
func checkServerLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	n := analysis.NamedRecv(tv.Type)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "net/http" || n.Obj().Name() != "Server" {
		return
	}
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && (key.Name == "ReadTimeout" || key.Name == "ReadHeaderTimeout") {
				return
			}
		}
	}
	pass.Reportf(lit.Pos(), "http.Server without ReadTimeout or ReadHeaderTimeout: a slowloris client holds its connection (and goroutine) open forever")
}

// isConn reports whether e's type is a net connection: the net.Conn
// interface or one of net's concrete conn types (possibly behind a
// pointer).
func isConn(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	n := analysis.NamedRecv(tv.Type)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "net" {
		return false
	}
	switch n.Obj().Name() {
	case "Conn", "TCPConn", "UDPConn", "UnixConn":
		return true
	}
	return false
}

func recvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if n := analysis.NamedRecv(sig.Recv().Type()); n != nil {
		return n.Obj().Name()
	}
	return ""
}
