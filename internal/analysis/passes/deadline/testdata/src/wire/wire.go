// Package wire stubs the protocol layer for deadline fixtures.
package wire

import "io"

type Request struct{ ID uint64 }

func ReadRequest(r io.Reader) (*Request, error) { return nil, nil }
func ReadFrame(r io.Reader) ([]byte, error)     { return nil, nil }
func WriteMessage(w io.Writer, v any) error     { return nil }
func WriteFrame(w io.Writer, b []byte) error    { return nil }
