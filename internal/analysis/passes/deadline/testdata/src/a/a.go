// Package a holds deadline fixtures: unarmed conn reads/writes, arming
// via SetDeadline/SetReadDeadline/SetWriteDeadline, wire helpers handed
// a raw conn, unbounded dials, and timeout-less HTTP servers.
package a

import (
	"net"
	"net/http"
	"time"

	"wire"
)

// Unarmed read: a silent peer pins the goroutine.
func rawRead(conn net.Conn, buf []byte) (int, error) {
	return conn.Read(buf) // want `read on conn without a read deadline`
}

// Armed read: clean.
func armedRead(conn net.Conn, buf []byte) (int, error) {
	if err := conn.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return 0, err
	}
	return conn.Read(buf)
}

// SetDeadline arms both directions: clean.
func armedBoth(conn net.Conn, buf []byte) error {
	if err := conn.SetDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	if _, err := conn.Read(buf); err != nil {
		return err
	}
	_, err := conn.Write(buf)
	return err
}

// A read deadline does not bound writes.
func readArmedWrite(conn net.Conn, buf []byte) error {
	if err := conn.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	_, err := conn.Write(buf) // want `write on conn without a write deadline`
	return err
}

// The wire helpers inherit the conn's deadlines — so the conn must be
// armed before handing it over.
func wireLoop(conn net.Conn) error {
	for {
		if err := conn.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
			return err
		}
		req, err := wire.ReadRequest(conn)
		if err != nil {
			return err
		}
		if err := wire.WriteMessage(conn, req); err != nil { // want `wire write to conn without a write deadline`
			return err
		}
	}
}

func wireArmed(conn net.Conn, v any) error {
	if err := conn.SetDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	if _, err := wire.ReadFrame(conn); err != nil {
		return err
	}
	return wire.WriteMessage(conn, v)
}

func wireColdRead(conn net.Conn) ([]byte, error) {
	return wire.ReadFrame(conn) // want `wire read from conn without a read deadline`
}

// Unbounded dial.
func dial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr) // want `net\.Dial blocks without bound`
}

// Bounded dial: clean.
func dialBounded(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 2*time.Second)
}

// Timeout-less HTTP servers are slowloris-vulnerable.
func serveBare(mux *http.ServeMux) *http.Server {
	return &http.Server{Handler: mux} // want `http\.Server without ReadTimeout or ReadHeaderTimeout`
}

func serveBounded(mux *http.ServeMux) *http.Server {
	return &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
}

func serveShortcut(addr string, mux *http.ServeMux) error {
	return http.ListenAndServe(addr, mux) // want `http\.ListenAndServe serves with no timeouts`
}
