// Package a holds pinunpin positive and negative cases.
package a

import (
	"fmt"

	"storage"
)

type holder struct {
	pool *storage.BufferPool
	page *storage.Page
}

// missingUnpin never releases: reported at the Pin.
func missingUnpin(pool *storage.BufferPool, id storage.PageID) {
	pg, err := pool.Pin(id) // want `pinned page is not released by pool\.Unpin\(id, \.\.\.\) on every path \(function end`
	if err != nil {
		return
	}
	_ = pg
}

// earlyReturnLeak releases on the happy path but leaks on the error
// return in the middle.
func earlyReturnLeak(pool *storage.BufferPool, id storage.PageID) error {
	pg, err := pool.Pin(id) // want `pinned page is not released by pool\.Unpin\(id, \.\.\.\) on every path \(return`
	if err != nil {
		return err
	}
	if pg.Data[0] == 0 {
		return fmt.Errorf("empty page %d", id)
	}
	return pool.Unpin(id, false)
}

// pairedHappyAndError is clean: both paths release.
func pairedHappyAndError(pool *storage.BufferPool, id storage.PageID) error {
	pg, err := pool.Pin(id)
	if err != nil {
		return err
	}
	if pg.Data[0] == 0 {
		pool.Unpin(id, false)
		return fmt.Errorf("empty page %d", id)
	}
	return pool.Unpin(id, true)
}

// deferredUnpin is clean: defer discharges every path.
func deferredUnpin(pool *storage.BufferPool, id storage.PageID) error {
	_, err := pool.Pin(id)
	if err != nil {
		return err
	}
	defer pool.Unpin(id, false)
	return nil
}

// loopIterationLeak re-pins every iteration without releasing.
func loopIterationLeak(pool *storage.BufferPool, ids []storage.PageID) {
	for _, id := range ids {
		pg, err := pool.Pin(id) // want `on every path \(loop iteration end`
		if err != nil {
			return
		}
		_ = pg.Data[0]
	}
}

// loopPaired is clean: each iteration releases before the next pin.
func loopPaired(pool *storage.BufferPool, ids []storage.PageID) error {
	for _, id := range ids {
		pg, err := pool.Pin(id)
		if err != nil {
			return err
		}
		_ = pg.Data[0]
		if err := pool.Unpin(id, false); err != nil {
			return err
		}
	}
	return nil
}

// droppedResult discards the pinned page entirely.
func droppedResult(pool *storage.BufferPool, id storage.PageID) {
	pool.Pin(id) // want `result of BufferPool\.Pin dropped`
}

// allocateLeak pins through Allocate and loses the page on the error
// path of the follow-up work.
func allocateLeak(pool *storage.BufferPool, fill func(*storage.Page) error) error {
	id, pg, err := pool.Allocate() // want `pinned page is not released by pool\.Unpin\(id, \.\.\.\) on every path \(return`
	if err != nil {
		return err
	}
	if err := fill(pg); err != nil {
		return err
	}
	return pool.Unpin(id, true)
}

// allocatePaired is clean.
func allocatePaired(pool *storage.BufferPool, fill func(*storage.Page) error) error {
	id, pg, err := pool.Allocate()
	if err != nil {
		return err
	}
	if err := fill(pg); err != nil {
		pool.Unpin(id, false)
		return err
	}
	return pool.Unpin(id, true)
}

// returnsPage hands the pinned page (and obligation) to the caller: not a
// leak here.
func returnsPage(pool *storage.BufferPool, id storage.PageID) (*storage.Page, error) {
	pg, err := pool.Pin(id)
	if err != nil {
		return nil, err
	}
	return pg, nil
}

// storesPage parks the page in a struct for a later Unpin elsewhere: the
// store discharges the local obligation.
func (h *holder) storesPage(id storage.PageID) error {
	pg, err := h.pool.Pin(id)
	if err != nil {
		return err
	}
	h.page = pg
	return nil
}

// errReassigned: after err is reused for other work, a bare `if err !=
// nil` no longer exempts the path.
func errReassigned(pool *storage.BufferPool, id storage.PageID, work func() error) error {
	pg, err := pool.Pin(id) // want `on every path \(return`
	if err != nil {
		return err
	}
	_ = pg
	err = work()
	if err != nil {
		return err // leaks: the pin succeeded
	}
	return pool.Unpin(id, false)
}

// suppressed demonstrates the ignore directive: the leak is intentional
// (a pin cache owns it) and documented.
func suppressed(pool *storage.BufferPool, id storage.PageID) {
	//genalgvet:ignore pinunpin fixture: pretend a pin cache owns this page
	pg, err := pool.Pin(id)
	if err != nil {
		return
	}
	_ = pg
}
