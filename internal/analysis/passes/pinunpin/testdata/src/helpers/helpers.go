// Package helpers holds cross-package release helpers: their pathflow
// summaries must cross the fixture package boundary for the importing
// fixture to come up clean.
package helpers

import "storage"

// Release unpins id on every path, discharging the caller's obligation.
func Release(bp *storage.BufferPool, id storage.PageID) {
	_ = bp.Unpin(id, true)
}

// ReleaseVia discharges through a second hop, exercising the in-package
// fixpoint before export.
func ReleaseVia(bp *storage.BufferPool, id storage.PageID) {
	Release(bp, id)
}
