// Package clean is an all-negative pinunpin fixture: idiomatic pairing
// patterns taken from the real heap-file code, none of which may fire.
package clean

import "storage"

// scanPages mirrors HeapFile.ScanPageRange: pin, copy, unpin, then use
// the copies.
func scanPages(pool *storage.BufferPool, ids []storage.PageID, fn func([]byte) bool) error {
	for _, id := range ids {
		pg, err := pool.Pin(id)
		if err != nil {
			return err
		}
		buf := make([]byte, len(pg.Data))
		copy(buf, pg.Data[:])
		if err := pool.Unpin(id, false); err != nil {
			return err
		}
		if !fn(buf) {
			return nil
		}
	}
	return nil
}

// chainWalk mirrors HeapFile.unframe's overflow-chain walk, where the key
// variable is rebound after the release.
func chainWalk(pool *storage.BufferPool, next storage.PageID) ([]byte, error) {
	var out []byte
	for next != 0 {
		pg, err := pool.Pin(next)
		if err != nil {
			return nil, err
		}
		out = append(out, pg.Data[:]...)
		nn := storage.PageID(pg.Data[0])
		if err := pool.Unpin(next, false); err != nil {
			return nil, err
		}
		next = nn
	}
	return out, nil
}

// insertFresh mirrors HeapFile.insertPrimary's allocate path.
func insertFresh(pool *storage.BufferPool, put func(*storage.Page) error) (storage.PageID, error) {
	id, pg, err := pool.Allocate()
	if err != nil {
		return 0, err
	}
	if err := put(pg); err != nil {
		pool.Unpin(id, false)
		return 0, err
	}
	if err := pool.Unpin(id, true); err != nil {
		return 0, err
	}
	return id, nil
}
