// Fixtures for interprocedural pin release: helpers whose pathflow
// summary proves they Unpin discharge the caller's obligation. The clean
// functions here are exactly the shapes the PR-5 intraprocedural engine
// flagged as false positives (a page ID passed to a call was never
// treated as a release or an escape).
package interproc

import (
	"helpers"
	"storage"
)

// release unpins on every path; its summary carries the (pool, id) pair.
func release(bp *storage.BufferPool, id storage.PageID) {
	_ = bp.Unpin(id, true)
}

// releaseChained discharges through release, resolved by the in-package
// fixpoint.
func releaseChained(bp *storage.BufferPool, id storage.PageID) {
	release(bp, id)
}

// maybeRelease unpins only on one path: no summary credit.
func maybeRelease(bp *storage.BufferPool, id storage.PageID, ok bool) {
	if ok {
		_ = bp.Unpin(id, false)
	}
}

// recursiveRelease "releases" only via recursion: there is no base-case
// Unpin, so the fixpoint never credits it.
func recursiveRelease(bp *storage.BufferPool, id storage.PageID) {
	recursiveRelease(bp, id)
}

// Same-package helper release: clean under the summary-aware engine.
func samePackageHelper(bp *storage.BufferPool, id storage.PageID) error {
	pg, err := bp.Pin(id)
	if err != nil {
		return err
	}
	_ = pg.Data
	release(bp, id)
	return nil
}

// Helper-chain release: clean via fixpoint iteration.
func chainedHelper(bp *storage.BufferPool, id storage.PageID) error {
	pg, err := bp.Pin(id)
	if err != nil {
		return err
	}
	_ = pg.Data
	releaseChained(bp, id)
	return nil
}

// Cross-package helper release: clean via the facts side-channel.
func crossPackageHelper(bp *storage.BufferPool, id storage.PageID) error {
	pg, err := bp.Pin(id)
	if err != nil {
		return err
	}
	_ = pg.Data
	helpers.Release(bp, id)
	return nil
}

// Cross-package two-hop release: the imported summary already folded the
// dependency's own fixpoint.
func crossPackageChained(bp *storage.BufferPool, id storage.PageID) error {
	pg, err := bp.Pin(id)
	if err != nil {
		return err
	}
	_ = pg.Data
	helpers.ReleaseVia(bp, id)
	return nil
}

// A conditional release in the helper must not be credited.
func conditionalHelper(bp *storage.BufferPool, id storage.PageID, ok bool) error {
	pg, err := bp.Pin(id) // want `pinned page is not released`
	if err != nil {
		return err
	}
	_ = pg.Data
	maybeRelease(bp, id, ok)
	return nil
}

// A recursive "release" must not be credited.
func recursionCaller(bp *storage.BufferPool, id storage.PageID) error {
	pg, err := bp.Pin(id) // want `pinned page is not released`
	if err != nil {
		return err
	}
	_ = pg.Data
	recursiveRelease(bp, id)
	return nil
}

// An unknown (indirect) callee must not be credited, even if it would
// release at run time.
func unknownCallee(bp *storage.BufferPool, id storage.PageID, f func(*storage.BufferPool, storage.PageID)) error {
	pg, err := bp.Pin(id) // want `pinned page is not released`
	if err != nil {
		return err
	}
	_ = pg.Data
	f(bp, id)
	return nil
}

// runRelease invokes its callback: an indirect call, so runRelease's own
// summary earns no release credit.
func runRelease(f func(storage.PageID, bool) error, id storage.PageID) {
	_ = f(id, true)
}

// A method value passed as a callback releases only through an indirect
// call at run time; the summary engine stays conservative and still
// flags the pin.
func methodValueCallback(bp *storage.BufferPool, id storage.PageID) error {
	pg, err := bp.Pin(id) // want `pinned page is not released`
	if err != nil {
		return err
	}
	_ = pg.Data
	runRelease(bp.Unpin, id)
	return nil
}
