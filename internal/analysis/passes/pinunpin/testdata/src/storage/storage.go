// Package storage is a fixture stand-in for genalg/internal/storage: the
// pinunpin analyzer matches the BufferPool type by name and package
// suffix, so this stub exercises it without export data.
package storage

// PageID identifies a page.
type PageID uint32

// Page is a fixed page image.
type Page struct {
	Data [64]byte
}

// BufferPool mimics the real pool's pin API.
type BufferPool struct{}

// Pin pins a page.
func (bp *BufferPool) Pin(id PageID) (*Page, error) { return &Page{}, nil }

// Unpin releases a pin.
func (bp *BufferPool) Unpin(id PageID, dirty bool) error { return nil }

// Allocate creates and pins a fresh page.
func (bp *BufferPool) Allocate() (PageID, *Page, error) { return 0, &Page{}, nil }

// FlushAll flushes.
func (bp *BufferPool) FlushAll() error { return nil }
