// Package pinunpin defines the genalgvet analyzer that enforces the
// buffer-pool pin discipline: every storage.BufferPool.Pin (and the pin
// implicit in Allocate) must be matched by an Unpin of the same page on
// every execution path. A page whose pin count never returns to zero can
// never be evicted, so a single missed error-path Unpin slowly wedges the
// pool until "all frames pinned" failures appear under load — the exact
// leak class PR 1's lock-granularity work and PR 3's Allocate fix removed
// by hand.
package pinunpin

import (
	"go/ast"
	"go/types"

	"genalg/internal/analysis"
	"genalg/internal/analysis/pathflow"
)

// Analyzer is the pinunpin check.
var Analyzer = &analysis.Analyzer{
	Name: "pinunpin",
	Doc: "check that every BufferPool.Pin/Allocate is matched by an Unpin of the same page on all paths\n\n" +
		"A pin leak permanently occupies a buffer-pool frame; enough of them exhaust the pool. " +
		"The release may be direct, deferred, performed by a spawned goroutine, or delegated to a " +
		"helper whose pathflow summary proves it calls Unpin(pool, id) on every path; paths where " +
		"the acquisition itself failed (guarded by `if err != nil` on the acquisition's error) are exempt; " +
		"returning or storing the pinned page hands ownership to the caller and discharges the check.",
	Run:   run,
	Facts: []*analysis.FactComputer{analysis.PathflowFacts},
}

func run(pass *analysis.Pass) error {
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				if name, is := pinCall(pass.TypesInfo, call); is {
					pass.Reportf(call.Pos(), "result of %s dropped: the page stays pinned with no way to Unpin it", name)
				}
			}
		case *ast.AssignStmt:
			checkAcquire(pass, s, stack)
		}
		return true
	})
	return nil
}

// pinCall reports whether call pins a page: BufferPool.Pin or
// BufferPool.Allocate.
func pinCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if analysis.IsMethodCall(info, call, "storage", "BufferPool", "Pin") {
		return "BufferPool.Pin", true
	}
	if analysis.IsMethodCall(info, call, "storage", "BufferPool", "Allocate") {
		return "BufferPool.Allocate", true
	}
	return "", false
}

func checkAcquire(pass *analysis.Pass, s *ast.AssignStmt, stack []ast.Node) {
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	name, is := pinCall(pass.TypesInfo, call)
	if !is {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recvStr := types.ExprString(sel.X)

	// Identify the page key the Unpin must name, the page variable, and
	// the acquisition's error variable.
	var keyStr string
	var pageObj, keyObj types.Object
	var errObj types.Object
	switch name {
	case "BufferPool.Pin": // pg, err := bp.Pin(id)
		if len(call.Args) != 1 || len(s.Lhs) != 2 {
			return
		}
		keyStr = types.ExprString(call.Args[0])
		pageObj = lhsObj(pass.TypesInfo, s.Lhs[0])
		errObj = lhsObj(pass.TypesInfo, s.Lhs[1])
	case "BufferPool.Allocate": // id, pg, err := bp.Allocate()
		if len(s.Lhs) != 3 {
			return
		}
		keyObj = lhsObj(pass.TypesInfo, s.Lhs[0])
		if keyObj == nil {
			// Allocating and discarding the new page's ID: nothing can
			// ever Unpin it.
			pass.Reportf(call.Pos(), "page ID from %s dropped: the new page stays pinned with no way to Unpin it", name)
			return
		}
		keyStr = keyObj.Name()
		pageObj = lhsObj(pass.TypesInfo, s.Lhs[1])
		errObj = lhsObj(pass.TypesInfo, s.Lhs[2])
	}

	fn := analysis.EnclosingFunc(stack)
	if fn == nil {
		return
	}
	sums := pass.Facts.Pathflow()
	ob := &pathflow.Obligation{
		Info: pass.TypesInfo,
		Releases: func(rel *ast.CallExpr) bool {
			if analysis.IsMethodCall(pass.TypesInfo, rel, "storage", "BufferPool", "Unpin") {
				rsel, ok := ast.Unparen(rel.Fun).(*ast.SelectorExpr)
				if !ok || len(rel.Args) < 1 {
					return false
				}
				return types.ExprString(rsel.X) == recvStr &&
					types.ExprString(rel.Args[0]) == keyStr
			}
			// A helper summarized as unpinning (pool, id) parameter pair
			// releases on the caller's behalf: releaseHelper(bp, id).
			if sum, ok := sums.LookupCall(pass.TypesInfo, rel); ok {
				for _, pr := range sum.Pins {
					if pr[0] < len(rel.Args) && pr[1] < len(rel.Args) &&
						types.ExprString(rel.Args[pr[0]]) == recvStr &&
						types.ExprString(rel.Args[pr[1]]) == keyStr {
						return true
					}
				}
			}
			return false
		},
		Escapes: func(n ast.Node) bool {
			return escapesThrough(pass.TypesInfo, n, pageObj, keyObj)
		},
		ErrVar: errObj,
	}
	leak, ok := ob.Check(fn, s)
	if !ok || leak == nil {
		return
	}
	line := pass.Fset.Position(leak.At.End()).Line
	pass.Reportf(call.Pos(), "%s(%s): pinned page is not released by %s.Unpin(%s, ...) on every path (%s, line %d)",
		name, keyStr, recvStr, keyStr, leak.Kind, line)
}

// lhsObj resolves the object an assignment target ident denotes (nil for
// `_` and non-ident targets).
func lhsObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if def, ok := info.Defs[id]; ok && def != nil {
		return def
	}
	return info.Uses[id]
}

// escapesThrough reports whether the pinned page (or its ID, for
// Allocate) is handed off at node n: returned to the caller, passed as a
// call argument, stored into a structure, or aliased — after which the
// new owner carries the Unpin obligation.
func escapesThrough(info *types.Info, n ast.Node, pageObj, keyObj types.Object) bool {
	uses := func(e ast.Expr) bool {
		return identIs(info, e, pageObj) || (keyObj != nil && identIs(info, e, keyObj))
	}
	switch n := n.(type) {
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if exprMentions(info, r, pageObj) || (keyObj != nil && exprMentions(info, r, keyObj)) {
				return true
			}
		}
		return false
	case *ast.AssignStmt:
		for i, r := range n.Rhs {
			// `_ = pg` is a use marker, not a handoff.
			if i < len(n.Lhs) && isBlank(n.Lhs[i]) {
				continue
			}
			if uses(r) {
				return true // aliased: pg2 := pg / w.page = pg
			}
			if comp, ok := ast.Unparen(r).(*ast.CompositeLit); ok && exprMentions(info, comp, pageObj) {
				return true
			}
		}
		return false
	case ast.Stmt:
		escaped := false
		ast.Inspect(n, func(m ast.Node) bool {
			if escaped {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				// Only the page pointer transfers ownership through a
				// call; page IDs ride through formatting and logging
				// calls all the time without doing so.
				if identIs(info, arg, pageObj) {
					escaped = true
				}
			}
			return true
		})
		return escaped
	}
	return false
}

func identIs(info *types.Info, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

func exprMentions(info *types.Info, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}
