package pinunpin_test

import (
	"testing"

	"genalg/internal/analysis/atest"
	"genalg/internal/analysis/passes/pinunpin"
)

func TestPinUnpin(t *testing.T) {
	atest.Run(t, "testdata", "a", pinunpin.Analyzer)
}

func TestPinUnpinClean(t *testing.T) {
	atest.Run(t, "testdata", "clean", pinunpin.Analyzer)
}
