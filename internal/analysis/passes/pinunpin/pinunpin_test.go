package pinunpin_test

import (
	"testing"

	"genalg/internal/analysis/atest"
	"genalg/internal/analysis/passes/pinunpin"
)

func TestPinUnpin(t *testing.T) {
	atest.Run(t, "testdata", "a", pinunpin.Analyzer)
}

func TestPinUnpinClean(t *testing.T) {
	atest.Run(t, "testdata", "clean", pinunpin.Analyzer)
}

// TestPinUnpinInterproc pins the summary-based upgrade: releases through
// same-package helpers, helper chains, and cross-package helpers are
// clean (the PR-5 engine flagged all of them), while conditional,
// recursive, and indirect "releases" stay flagged.
func TestPinUnpinInterproc(t *testing.T) {
	atest.Run(t, "testdata", "interproc", pinunpin.Analyzer)
}
