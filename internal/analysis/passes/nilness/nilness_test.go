package nilness_test

import (
	"testing"

	"genalg/internal/analysis/atest"
	"genalg/internal/analysis/passes/nilness"
)

func TestNilness(t *testing.T) {
	atest.Run(t, "testdata", "a", nilness.Analyzer)
}
