// Package a holds nilness positive and negative cases.
package a

type node struct {
	next *node
	val  int
}

type span struct{ n int }

// End is nil-safe, like the real trace.Span methods.
func (s *span) End() {}

func fieldDeref(p *node) int {
	if p == nil {
		return p.val // want `nil dereference: p\.val inside a branch where p == nil`
	}
	return p.val
}

func starDeref(p *int) int {
	if p == nil {
		return *p // want `nil dereference: \*p inside a branch where p == nil`
	}
	return *p
}

func reassignedFirst(p *node) int {
	if p == nil {
		p = &node{}
		return p.val
	}
	return p.val
}

func nilSafeMethod(s *span) {
	if s == nil {
		s.End()
	}
}

func notNilBranch(p *node) int {
	if p != nil {
		return p.val
	}
	return 0
}

func nonPointer(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}
