// Package nilness is a stdlib-only, structural subset of the stock SSA
// nilness analyzer (go vet does not run the stock one by default, and
// x/tools is unavailable offline). It reports the high-confidence core:
// dereferencing a pointer inside the then-branch of `if x == nil`, where
// the branch neither reassigns x nor returns first. Method calls on nil
// receivers are deliberately NOT flagged — this codebase's trace.Span is
// nil-safe by design and calling methods on a nil *Span is idiomatic.
package nilness

import (
	"go/ast"
	"go/token"
	"go/types"

	"genalg/internal/analysis"
)

// Analyzer is the nilness-lite check.
var Analyzer = &analysis.Analyzer{
	Name: "nilness",
	Doc: "check for dereferences of pointers the enclosing branch proved nil\n\n" +
		"Flags *x and x.field loads inside `if x == nil { ... }` before any reassignment of x.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		obj := nilCheckedObj(pass.TypesInfo, ifs.Cond)
		if obj == nil {
			return true
		}
		if _, isPtr := obj.Type().Underlying().(*types.Pointer); !isPtr {
			return true
		}
		checkBranch(pass, ifs.Body, obj)
		return true
	})
	return nil
}

// nilCheckedObj returns the object X when cond is exactly `X == nil` (or
// `nil == X`) for a plain identifier X.
func nilCheckedObj(info *types.Info, cond ast.Expr) types.Object {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return nil
	}
	ident := func(e ast.Expr) *ast.Ident {
		id, _ := ast.Unparen(e).(*ast.Ident)
		return id
	}
	x, y := ident(be.X), ident(be.Y)
	switch {
	case x != nil && y != nil && y.Name == "nil":
		return info.Uses[x]
	case x != nil && y != nil && x.Name == "nil":
		return info.Uses[y]
	}
	return nil
}

// checkBranch reports loads through obj inside body, stopping at the
// first reassignment of obj (and not descending into nested functions,
// which may run after obj is set).
func checkBranch(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) {
	reassigned := false
	ast.Inspect(body, func(n ast.Node) bool {
		if reassigned {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					reassigned = true
					return false
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				// &x.f only computes an address; no load happens.
				return false
			}
		case *ast.StarExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				pass.Reportf(n.Pos(), "nil dereference: *%s inside a branch where %s == nil", obj.Name(), obj.Name())
			}
		case *ast.SelectorExpr:
			id, ok := ast.Unparen(n.X).(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != obj {
				return true
			}
			// Field access loads through the nil pointer; a method value
			// does not (nil-receiver methods are legal and used here).
			if sel := pass.TypesInfo.Selections[n]; sel != nil && sel.Kind() == types.FieldVal {
				pass.Reportf(n.Pos(), "nil dereference: %s.%s inside a branch where %s == nil", obj.Name(), n.Sel.Name, obj.Name())
			}
		}
		return true
	})
	return
}
