//go:build benchjitter

// Measurement-only build: the replay contract does not apply here, so
// the global source is tolerated.
package loadgen

import "math/rand"

func jitter(n int) int { return rand.Intn(n) }
