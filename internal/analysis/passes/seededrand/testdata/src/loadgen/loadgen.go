// Package loadgen (fixture) is under the deterministic-replay contract.
package loadgen

import (
	"math/rand"
	"time"
)

// Drawing from the global source breaks replay.
func pickGlobal(n int) int {
	return rand.Intn(n) // want `rand\.Intn draws from the global math/rand source`
}

func shuffleGlobal(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the global math/rand source`
}

// Wall-clock seeds defeat replay even with an explicit source.
func clockSource() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeding from the wall clock defeats deterministic replay`
}

// The sanctioned pattern: explicit source from a config seed.
func seeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// Measuring elapsed time is not randomness: clean.
func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
