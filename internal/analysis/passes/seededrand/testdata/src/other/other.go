// Package other is outside the deterministic-replay contract: the
// analyzer must not fire here.
package other

import "math/rand"

func roll(n int) int { return rand.Intn(n) }
