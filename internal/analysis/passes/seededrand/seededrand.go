// Package seededrand defines the genalgvet analyzer that keeps the
// deterministic subsystems deterministic. The load generator, fault
// source, and SQL regression generator all promise byte-identical
// replays given the same config seed (that is what makes a chaos failure
// or a fuzz crash reproducible); one call to the global math/rand source
// or a wall-clock-derived seed silently breaks the promise.
//
// In packages loadgen, faultsrc, and regress (non-test files without
// build tags — tagged files are measurement-only builds and exempt):
//
//   - calls to math/rand's package-level functions (Intn, Int63, Perm,
//     Shuffle, Seed, ...) are reported: draw from the run's seeded
//     *rand.Rand instead;
//   - rand.NewSource/Seed fed from time.Now is reported: the seed must
//     come from the run config, not the wall clock.
package seededrand

import (
	"go/ast"
	"go/types"
	"strings"

	"genalg/internal/analysis"
)

// Analyzer is the seededrand check.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "check that deterministic packages (loadgen, faultsrc, regress) never draw from the global math/rand or seed from the wall clock\n\n" +
		"Deterministic replay of chaos runs and fuzz cases requires every random draw to flow from " +
		"the config seed through an explicit *rand.Rand.",
	Run: run,
}

// deterministicPkgs are the packages under the replay contract.
var deterministicPkgs = []string{"loadgen", "faultsrc", "regress"}

// globalFns are math/rand package-level functions backed by the global
// source. New/NewSource/NewZipf take explicit sources and are fine.
var globalFns = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func run(pass *analysis.Pass) error {
	deterministic := false
	for _, name := range deterministicPkgs {
		if analysis.PkgIs(pass.Pkg.Path(), name) {
			deterministic = true
		}
	}
	if !deterministic {
		return nil
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") || hasBuildTag(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || !isMathRand(fn.Pkg().Path()) {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil { // methods on an explicit *Rand are fine
				return true
			}
			switch {
			case globalFns[fn.Name()]:
				pass.Reportf(call.Pos(), "rand.%s draws from the global math/rand source: deterministic replay requires the run's seeded *rand.Rand", fn.Name())
			case (fn.Name() == "NewSource" || fn.Name() == "Seed") && containsTimeNow(pass, call):
				pass.Reportf(call.Pos(), "seeding from the wall clock defeats deterministic replay: take the seed from the run config")
			}
			return true
		})
	}
	return nil
}

func isMathRand(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// containsTimeNow reports whether any argument subtree calls time.Now.
func containsTimeNow(pass *analysis.Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if found {
				return false
			}
			if c, ok := n.(*ast.CallExpr); ok {
				if fn := analysis.CalleeFunc(pass.TypesInfo, c); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "time" && fn.Name() == "Now" {
					found = true
					return false
				}
			}
			return true
		})
	}
	return found
}

// hasBuildTag reports whether the file carries a //go:build constraint
// (measurement-only builds are exempt from the replay contract).
func hasBuildTag(file *ast.File) bool {
	for _, cg := range file.Comments {
		if cg.Pos() >= file.Package {
			break
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//go:build") || strings.HasPrefix(c.Text, "// +build") {
				return true
			}
		}
	}
	return false
}
