package seededrand_test

import (
	"testing"

	"genalg/internal/analysis/atest"
	"genalg/internal/analysis/passes/seededrand"
)

func TestSeededRand(t *testing.T) {
	atest.Run(t, "testdata", "loadgen", seededrand.Analyzer)
}

// TestSeededRandScope pins that packages outside the contract are never
// flagged.
func TestSeededRandScope(t *testing.T) {
	atest.Run(t, "testdata", "other", seededrand.Analyzer)
}
