// Package a holds goroleak fixtures.
package a

func work()      {}
func cond() bool { return false }

// spinner can never be stopped.
func spinner() {
	go func() {
		for { // want `goroutine loops forever with no exit path`
			work()
		}
	}()
}

// A select inside the loop is a cancellation point: clean.
func selectLoop(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()
}

// A channel receive paces (and can release) the loop: clean.
func recvLoop(tick chan struct{}) {
	go func() {
		for {
			<-tick
			work()
		}
	}()
}

// A conditional return is an exit path: clean.
func returnLoop() {
	go func() {
		for {
			if cond() {
				return
			}
			work()
		}
	}()
}

// Ranging over a channel ends when it closes: clean.
func rangeLoop(jobs chan int) {
	go func() {
		for range jobs {
			work()
		}
	}()
}

// Straight-line goroutines terminate on their own: clean.
func oneShot(done chan<- struct{}) {
	go func() {
		work()
		done <- struct{}{}
	}()
}

// worker is launched by name; its body is visible in-package.
func worker() {
	for { // want `goroutine loops forever with no exit path`
		work()
	}
}

func launch() {
	go worker()
}

// A return inside a nested function literal does not exit this loop.
func nestedLit() {
	go func() {
		for { // want `goroutine loops forever with no exit path`
			f := func() { return }
			f()
		}
	}()
}

// Bounded loops terminate: clean.
func bounded() {
	go func() {
		for i := 0; i < 10; i++ {
			work()
		}
	}()
}
