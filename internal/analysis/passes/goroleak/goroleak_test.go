package goroleak_test

import (
	"testing"

	"genalg/internal/analysis/atest"
	"genalg/internal/analysis/passes/goroleak"
)

func TestGoroLeak(t *testing.T) {
	atest.Run(t, "testdata", "a", goroleak.Analyzer)
}
