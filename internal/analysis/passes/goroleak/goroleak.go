// Package goroleak defines the genalgvet analyzer that flags goroutines
// with no shutdown path. The daemon stack leans on long-lived goroutines
// (accept loops, chaos probes, worker pools); each one must be stoppable
// or the process accumulates them across reload/drain cycles and "go
// test -race" times out waiting for them.
//
// The check is deliberately narrow to stay precise: a `go` statement
// whose body (a function literal, or a same-package function — other
// bodies are invisible here) contains a bare `for { ... }` loop with no
// exit or cancellation point is reported. Exit points are a return, a
// break, a select, or a channel receive anywhere in the loop outside
// nested function literals; loops with conditions and `range` loops
// terminate (or end when their channel closes) and are exempt. Test
// files are exempt.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"genalg/internal/analysis"
)

// Analyzer is the goroleak check.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "check that spawned goroutines have a shutdown path\n\n" +
		"A goroutine body with a bare for-loop containing no return, break, select, or channel receive " +
		"can never be stopped: it leaks across drain/reload cycles.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Same-package function bodies, for `go worker()` launches.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goBody(pass.TypesInfo, g, decls)
			if body == nil {
				return true
			}
			if pos, leaks := foreverLoop(body); leaks {
				pass.Reportf(pos, "goroutine loops forever with no exit path (no return, break, select, or channel receive): it cannot be shut down and leaks across drain cycles")
			}
			return true
		})
	}
	return nil
}

// goBody resolves the body the go statement runs: a literal's body, or
// the body of a same-package function. nil when invisible.
func goBody(info *types.Info, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) *ast.BlockStmt {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	default:
		if fn := analysis.CalleeFunc(info, g.Call); fn != nil {
			if fd, ok := decls[fn]; ok {
				return fd.Body
			}
		}
	}
	return nil
}

// foreverLoop finds a bare `for {}` in body (outside nested function
// literals) whose own body has no exit or cancellation point.
func foreverLoop(body *ast.BlockStmt) (token.Pos, bool) {
	var found token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if found.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Init == nil && n.Cond == nil && n.Post == nil && !hasExit(n.Body) {
				found = n.Pos()
				return false
			}
		}
		return true
	})
	return found, found.IsValid()
}

// hasExit reports whether the loop body contains a return, break,
// select, or channel receive outside nested function literals.
func hasExit(body *ast.BlockStmt) bool {
	exits := false
	ast.Inspect(body, func(n ast.Node) bool {
		if exits {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt, *ast.SelectStmt:
			exits = true
			return false
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				exits = true
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW { // channel receive: blocks until signaled/closed
				exits = true
				return false
			}
		case *ast.RangeStmt:
			// range over a channel inside the loop is a cancellation point
			// too; other ranges just iterate.
		}
		return true
	})
	return exits
}
