// Package spanend defines the genalgvet analyzer that enforces span
// termination: every span or timer the tracing/metrics substrate hands
// out must be ended on every execution path.
//
//   - trace.Start returns a *Span that must see EndSpan or EndOK;
//     an unended span never commits, so the whole trace (and its
//     errors+slow sampling decision) silently vanishes from the ring.
//   - obs.StartSpan returns an obs.Span whose End records the duration
//     histogram sample; a missed End on an error path biases latency
//     metrics toward the happy path.
//   - Registry.Timer returns a stop func with the same contract.
package spanend

import (
	"go/ast"
	"go/types"

	"genalg/internal/analysis"
	"genalg/internal/analysis/pathflow"
)

// Analyzer is the spanend check.
var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc: "check that trace.Start spans, obs.StartSpan spans, and Registry.Timer stop funcs are ended on all paths\n\n" +
		"A span left open never reaches the trace ring and skews duration metrics. Ending may be direct, " +
		"deferred (including `defer func() { sp.EndSpan(err) }()`), delegated to a helper whose pathflow " +
		"summary proves it ends or absorbs the span (including a method value like sp.End passed as a " +
		"callback), or discharged by returning/storing the span. Passing the span to a summarized callee " +
		"that neither ends nor keeps it does NOT discharge the obligation.",
	Run:   run,
	Facts: []*analysis.FactComputer{analysis.PathflowFacts},
}

// endMethods are the Span methods that retire a span.
var endMethods = map[string]bool{"EndSpan": true, "EndOK": true, "End": true}

func run(pass *analysis.Pass) error {
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				if name, _, is := spanCall(pass.TypesInfo, call); is {
					pass.Reportf(call.Pos(), "result of %s dropped: the span can never be ended", name)
				}
			}
		case *ast.AssignStmt:
			checkAcquire(pass, s, stack)
		}
		return true
	})
	return nil
}

// spanCall classifies an acquisition call. resultIdx is the index of the
// span/stop-func value among the call's results.
func spanCall(info *types.Info, call *ast.CallExpr) (name string, resultIdx int, ok bool) {
	switch {
	case analysis.IsPkgFuncCall(info, call, "trace", "Start"):
		return "trace.Start", 1, true
	case analysis.IsPkgFuncCall(info, call, "obs", "StartSpan"):
		return "obs.StartSpan", 0, true
	case analysis.IsMethodCall(info, call, "obs", "Registry", "Timer"):
		return "Registry.Timer", 0, true
	}
	return "", 0, false
}

func checkAcquire(pass *analysis.Pass, s *ast.AssignStmt, stack []ast.Node) {
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	name, resultIdx, is := spanCall(pass.TypesInfo, call)
	if !is {
		return
	}
	if len(s.Lhs) <= resultIdx {
		return
	}
	spanObj := lhsObj(pass.TypesInfo, s.Lhs[resultIdx])
	if spanObj == nil {
		pass.Reportf(call.Pos(), "span from %s assigned to _: it can never be ended", name)
		return
	}
	fn := analysis.EnclosingFunc(stack)
	if fn == nil {
		return
	}

	isTimer := name == "Registry.Timer"
	sums := pass.Facts.Pathflow()
	ob := &pathflow.Obligation{
		Info: pass.TypesInfo,
		Releases: func(rel *ast.CallExpr) bool {
			if isTimer {
				// done() — calling the stop func.
				if identIs(pass.TypesInfo, rel.Fun, spanObj) {
					return true
				}
			} else if sel, ok := ast.Unparen(rel.Fun).(*ast.SelectorExpr); ok &&
				endMethods[sel.Sel.Name] && identIs(pass.TypesInfo, sel.X, spanObj) {
				return true
			}
			// Interprocedural: a callee summarized as ending/keeping the
			// span parameter, invoking the stop-func parameter, or calling
			// a method value like sp.End passed as a callback.
			sum, ok := sums.LookupCall(pass.TypesInfo, rel)
			if !ok {
				return false
			}
			for i, arg := range rel.Args {
				if identIs(pass.TypesInfo, arg, spanObj) {
					if isTimer && hasIdx(sum.Calls, i) {
						return true
					}
					if !isTimer && (hasIdx(sum.Spans, i) || hasIdx(sum.SpanEscapes, i)) {
						return true
					}
				}
				if !isTimer && hasIdx(sum.Calls, i) && isEndMethodValue(pass.TypesInfo, arg, spanObj) {
					return true
				}
			}
			return false
		},
		Escapes: func(n ast.Node) bool {
			return escapesThrough(pass.TypesInfo, sums, n, spanObj, isTimer)
		},
	}
	leak, ok := ob.Check(fn, s)
	if !ok || leak == nil {
		return
	}
	verb := "EndSpan/EndOK"
	switch name {
	case "obs.StartSpan":
		verb = "End"
	case "Registry.Timer":
		verb = "a call of the stop func"
	}
	line := pass.Fset.Position(leak.At.End()).Line
	pass.Reportf(call.Pos(), "span from %s is not ended by %s on every path (%s, line %d)",
		name, verb, leak.Kind, line)
}

func lhsObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if def, ok := info.Defs[id]; ok && def != nil {
		return def
	}
	return info.Uses[id]
}

// escapesThrough: returning, storing, or aliasing the span hands the End
// obligation onward, as does passing it to a callee the summaries know
// nothing about. A callee WITH a pathflow summary escapes the span only
// if the summary says it ends or keeps that parameter — a helper that
// merely reads the span (logs its name, say) leaves the obligation here.
func escapesThrough(info *types.Info, sums *pathflow.Summaries, n ast.Node, spanObj types.Object, isTimer bool) bool {
	switch n := n.(type) {
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if exprMentions(info, r, spanObj) {
				return true
			}
		}
		return false
	case ast.Stmt:
		escaped := false
		ast.Inspect(n, func(m ast.Node) bool {
			if escaped {
				return false
			}
			switch m := m.(type) {
			case *ast.AssignStmt:
				for i, r := range m.Rhs {
					if i < len(m.Lhs) && isBlank(m.Lhs[i]) {
						continue
					}
					if exprMentions(info, r, spanObj) {
						escaped = true
					}
				}
			case *ast.CallExpr:
				if isTimer && identIs(info, m.Fun, spanObj) {
					return true // the release itself, not an escape
				}
				sum, known := sums.LookupCall(info, m)
				for i, arg := range m.Args {
					if !identIs(info, arg, spanObj) {
						continue
					}
					if !known {
						escaped = true
					} else if isTimer && hasIdx(sum.Calls, i) {
						escaped = true
					} else if !isTimer && (hasIdx(sum.Spans, i) || hasIdx(sum.SpanEscapes, i)) {
						escaped = true
					}
				}
			}
			return true
		})
		return escaped
	}
	return false
}

func hasIdx(list []int, i int) bool {
	for _, v := range list {
		if v == i {
			return true
		}
	}
	return false
}

// isEndMethodValue reports whether e is a method value sp.End / sp.EndOK
// / sp.EndSpan on the tracked span.
func isEndMethodValue(info *types.Info, e ast.Expr, spanObj types.Object) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	return ok && endMethods[sel.Sel.Name] && identIs(info, sel.X, spanObj)
}

func identIs(info *types.Info, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

func exprMentions(info *types.Info, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}
