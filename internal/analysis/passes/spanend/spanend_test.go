package spanend_test

import (
	"testing"

	"genalg/internal/analysis/atest"
	"genalg/internal/analysis/passes/spanend"
)

func TestSpanEnd(t *testing.T) {
	atest.Run(t, "testdata", "a", spanend.Analyzer)
}

// TestSpanEndInterproc pins the summary-based upgrade: helper ends
// (same- and cross-package), ownership transfer to a keeper, and method
// values passed as callbacks are clean, while spans handed to read-only
// helpers are now flagged.
func TestSpanEndInterproc(t *testing.T) {
	atest.Run(t, "testdata", "interproc", spanend.Analyzer)
}
