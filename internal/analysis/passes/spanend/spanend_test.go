package spanend_test

import (
	"testing"

	"genalg/internal/analysis/atest"
	"genalg/internal/analysis/passes/spanend"
)

func TestSpanEnd(t *testing.T) {
	atest.Run(t, "testdata", "a", spanend.Analyzer)
}
