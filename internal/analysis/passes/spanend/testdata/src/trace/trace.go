// Package trace is a fixture stand-in for genalg/internal/trace.
package trace

import "context"

// Span mimics the real nil-safe span handle.
type Span struct{}

// Start begins a child span.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}

// SetAttr records an attribute.
func (s *Span) SetAttr(key string, v any) {}

// Eventf records an event.
func (s *Span) Eventf(format string, args ...any) {}

// EndSpan retires the span with an error.
func (s *Span) EndSpan(err error) {}

// EndOK retires the span successfully.
func (s *Span) EndOK() {}
