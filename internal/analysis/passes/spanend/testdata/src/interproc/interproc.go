// Fixtures for interprocedural span termination. Two upgrades over the
// PR-5 engine are pinned here: a method value like sp.EndOK passed to a
// callback runner now counts as an end (the old engine saw neither a
// release nor an ident escape and flagged it), and passing a span to a
// summarized helper that merely READS it no longer discharges the
// obligation (the old engine treated every call argument as an escape).
package interproc

import (
	"context"
	"spanhelp"
	"time"
	"trace"
)

var sink *trace.Span

// finish ends the span on every path; summarized as Spans=[0].
func finish(sp *trace.Span, err error) {
	if err != nil {
		sp.EndSpan(err)
		return
	}
	sp.EndOK()
}

// keep stores the span; summarized as SpanEscapes=[0].
func keep(sp *trace.Span) {
	sink = sp
}

// inspect neither ends nor keeps the span: empty summary.
func inspect(sp *trace.Span) {
	sp.Eventf("seen")
}

// runWith invokes its callback on every path; summarized as Calls=[0].
func runWith(f func()) {
	f()
}

// runStop invokes a timer stop func on every path.
func runStop(f func() time.Duration) {
	_ = f()
}

// Same-package helper ends the span: clean.
func samePackageFinish(ctx context.Context, err error) {
	_, sp := trace.Start(ctx, "same")
	finish(sp, err)
}

// Cross-package helper ends the span: clean via imported facts.
func crossPackageFinish(ctx context.Context, err error) {
	_, sp := trace.Start(ctx, "cross")
	spanhelp.Finish(sp, err)
}

// Handing the span to a keeper transfers the obligation: clean.
func handedToKeeper(ctx context.Context) {
	_, sp := trace.Start(ctx, "keep")
	keep(sp)
}

// Method value passed as a callback: the runner's Calls summary plus the
// end-method value proves the span ends. The PR-5 engine flagged this.
func methodValueCallback(ctx context.Context) {
	_, sp := trace.Start(ctx, "cb")
	runWith(sp.EndOK)
}

// A span passed to a read-only helper is NOT discharged (tightened: the
// old engine let any call argument count as an escape).
func passedToReader(ctx context.Context) {
	_, sp := trace.Start(ctx, "read") // want `not ended`
	inspect(sp)
}

// Same tightening across packages.
func passedToCrossReader(ctx context.Context) {
	_, sp := trace.Start(ctx, "readx") // want `not ended`
	spanhelp.Inspect(sp)
}

// An unknown (indirect) callee still counts as an escape: someone got
// the span, and the analysis cannot see what they do with it.
func passedToUnknown(ctx context.Context, f func(*trace.Span)) {
	_, sp := trace.Start(ctx, "unk")
	f(sp)
}
