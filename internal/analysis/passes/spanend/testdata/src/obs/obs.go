// Package obs is a fixture stand-in for genalg/internal/obs.
package obs

import "time"

// Registry mimics the metrics registry.
type Registry struct{}

// Span mimics the histogram-backed timing span.
type Span struct{}

// End retires the span.
func (s Span) End() time.Duration { return 0 }

// StartSpan begins timing against r.
func StartSpan(r *Registry, name string) Span { return Span{} }

// Timer returns a stop func recording elapsed seconds.
func (r *Registry) Timer(name string) func() time.Duration {
	s := StartSpan(r, name)
	return s.End
}
