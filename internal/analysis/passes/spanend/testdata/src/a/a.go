// Package a holds spanend positive and negative cases.
package a

import (
	"context"
	"errors"

	"obs"
	"trace"
)

// missingEnd opens a span and never ends it.
func missingEnd(ctx context.Context) {
	_, sp := trace.Start(ctx, "layer.op") // want `span from trace\.Start is not ended .* \(function end`
	sp.SetAttr("k", 1)
}

// errorPathLeak ends the happy path only.
func errorPathLeak(ctx context.Context, work func(context.Context) error) error {
	ctx, sp := trace.Start(ctx, "layer.op") // want `span from trace\.Start is not ended by EndSpan/EndOK on every path \(return`
	if err := work(ctx); err != nil {
		return err
	}
	sp.EndOK()
	return nil
}

// deferClosureEnd is the repo's standard named-return idiom: clean.
func deferClosureEnd(ctx context.Context, work func(context.Context) error) (err error) {
	ctx, sp := trace.Start(ctx, "layer.op")
	defer func() { sp.EndSpan(err) }()
	return work(ctx)
}

// branchesEnd ends on both branches: clean.
func branchesEnd(ctx context.Context, work func(context.Context) error) error {
	ctx, sp := trace.Start(ctx, "layer.op")
	if err := work(ctx); err != nil {
		sp.EndSpan(err)
		return err
	}
	sp.EndOK()
	return nil
}

// droppedSpan discards the span value outright.
func droppedSpan(ctx context.Context) context.Context {
	ctx, _ = trace.Start(ctx, "layer.op") // want `span from trace\.Start assigned to _`
	return ctx
}

// bareStart drops both results.
func bareStart(ctx context.Context) {
	trace.Start(ctx, "layer.op") // want `result of trace\.Start dropped`
}

// obsSpanLeak forgets End on the error path.
func obsSpanLeak(r *obs.Registry, work func() error) error {
	s := obs.StartSpan(r, "layer.op.seconds") // want `span from obs\.StartSpan is not ended by End on every path \(return`
	if err := work(); err != nil {
		return err
	}
	s.End()
	return nil
}

// obsSpanDefer is clean via method-value defer.
func obsSpanDefer(r *obs.Registry, work func() error) error {
	s := obs.StartSpan(r, "layer.op.seconds")
	defer s.End()
	return work()
}

// timerLeak never invokes the stop func on the error path.
func timerLeak(r *obs.Registry, work func() error) error {
	done := r.Timer("layer.op.seconds") // want `span from Registry\.Timer is not ended by a call of the stop func on every path \(return`
	if err := work(); err != nil {
		return err
	}
	done()
	return nil
}

// timerDefer is the canonical immediate-defer form: nothing tracked.
func timerDefer(r *obs.Registry, work func() error) error {
	defer r.Timer("layer.op.seconds")()
	return work()
}

// timerDeferred defers the named stop func: clean.
func timerDeferred(r *obs.Registry, work func() error) error {
	done := r.Timer("layer.op.seconds")
	defer done()
	return work()
}

// handoff passes the span to a helper that owns ending it: clean here.
func handoff(ctx context.Context, finish func(*trace.Span, error)) error {
	_, sp := trace.Start(ctx, "layer.op")
	err := errors.New("boom")
	finish(sp, err)
	return err
}

// suppressed documents an intentional leak.
func suppressed(ctx context.Context) {
	_, sp := trace.Start(ctx, "layer.op") //genalgvet:ignore spanend fixture: span intentionally owned by a background committer
	sp.SetAttr("k", 1)
}
