// Package spanhelp holds cross-package span helpers whose summaries
// travel through the facts side-channel.
package spanhelp

import "trace"

// Finish ends the span on every path.
func Finish(sp *trace.Span, err error) {
	if err != nil {
		sp.EndSpan(err)
		return
	}
	sp.EndOK()
}

// Inspect only reads the span: it neither ends nor keeps it, so the
// caller's obligation stays with the caller.
func Inspect(sp *trace.Span) {
	sp.Eventf("inspected")
}
