// Package passes registers every genalgvet analyzer. The project checks
// encode invariants from earlier PRs (pin/unpin discipline, span
// lifecycle, context threading, lock hygiene, metric naming, boundary
// error classification, WAL durability, lock ordering, goroutine
// shutdown, network deadlines, deterministic replay); the stock-lite
// checks reimplement the useful core of vet passes this offline build
// cannot import from x/tools.
package passes

import (
	"genalg/internal/analysis"
	"genalg/internal/analysis/passes/copylocks"
	"genalg/internal/analysis/passes/ctxpass"
	"genalg/internal/analysis/passes/deadline"
	"genalg/internal/analysis/passes/durability"
	"genalg/internal/analysis/passes/errclass"
	"genalg/internal/analysis/passes/goroleak"
	"genalg/internal/analysis/passes/lockio"
	"genalg/internal/analysis/passes/lockorder"
	"genalg/internal/analysis/passes/metricname"
	"genalg/internal/analysis/passes/nilness"
	"genalg/internal/analysis/passes/pinunpin"
	"genalg/internal/analysis/passes/seededrand"
	"genalg/internal/analysis/passes/spanend"
	"genalg/internal/analysis/passes/unusedresult"
)

// All returns every analyzer in the suite, project checks first.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		pinunpin.Analyzer,
		spanend.Analyzer,
		ctxpass.Analyzer,
		lockio.Analyzer,
		durability.Analyzer,
		lockorder.Analyzer,
		goroleak.Analyzer,
		deadline.Analyzer,
		seededrand.Analyzer,
		metricname.Analyzer,
		errclass.Analyzer,
		copylocks.Analyzer,
		nilness.Analyzer,
		unusedresult.Analyzer,
	}
}

// Known maps analyzer names to true, for validating ignore directives.
func Known() map[string]bool {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	return known
}
