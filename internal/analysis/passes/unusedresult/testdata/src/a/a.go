// Package a holds unusedresult positive and negative cases.
package a

import (
	"errors"
	"fmt"
	"strings"

	"obs"
)

func drops() {
	fmt.Sprintf("x=%d", 1)   // want `result of fmt\.Sprintf call not used`
	errors.New("boom")       // want `result of errors\.New call not used`
	strings.TrimSpace(" x ") // want `result of strings\.TrimSpace call not used`
}

func dropsMethod() {
	var sb strings.Builder
	sb.WriteString("ok")
	sb.String() // want `result of \(strings\.Builder\)\.String call not used`
}

func dropsJoin(prefix string) {
	obs.Join(prefix, "hits") // want `result of obs\.Join call not used`
}

func uses(prefix string) string {
	s := fmt.Sprintf("x=%d", 1)
	fmt.Println(s)
	return obs.Join(prefix, strings.TrimSpace(" hits "))
}
