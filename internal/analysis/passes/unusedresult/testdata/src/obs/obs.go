// Package obs is a fixture stand-in for genalg/internal/obs.
package obs

import "strings"

// Join builds a dotted metric name, dropping empty parts.
func Join(parts ...string) string { return strings.Join(parts, ".") }
