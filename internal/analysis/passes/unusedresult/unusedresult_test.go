package unusedresult_test

import (
	"testing"

	"genalg/internal/analysis/atest"
	"genalg/internal/analysis/passes/unusedresult"
)

func TestUnusedResult(t *testing.T) {
	atest.Run(t, "testdata", "a", unusedresult.Analyzer)
}
