// Package unusedresult is a stdlib-only reimplementation of the stock
// go/analysis unusedresult check: calling a side-effect-free function as
// a statement silently discards its only product. On top of the stock
// stdlib list it knows this repo's own pure helpers (obs.Join).
package unusedresult

import (
	"go/ast"
	"go/types"

	"genalg/internal/analysis"
)

// pureFuncs maps package path -> function names whose results must be
// used. Matching for repo-local packages is by path suffix.
var pureFuncs = map[string][]string{
	"errors":  {"New", "Unwrap", "Join"},
	"fmt":     {"Errorf", "Sprint", "Sprintf", "Sprintln"},
	"sort":    {"Reverse"},
	"context": {"Background", "TODO", "WithValue"},
	"strings": {
		"Clone", "Compare", "Contains", "Count", "Fields", "Index", "Join",
		"Repeat", "Replace", "ReplaceAll", "Split", "SplitN", "Title",
		"ToLower", "ToUpper", "TrimSpace", "TrimPrefix", "TrimSuffix",
	},
	"obs": {"Join"},
}

// pureMethods maps receiver type (in the named package) -> methods.
var pureMethods = map[string]map[string][]string{
	"strings": {"Builder": {"String"}, "Replacer": {"Replace"}},
	"bytes":   {"Buffer": {"String", "Bytes"}},
}

// Analyzer is the unusedresult check.
var Analyzer = &analysis.Analyzer{
	Name: "unusedresult",
	Doc:  "check for unused results of calls to pure functions (stock list plus obs.Join)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		path, name := fn.Pkg().Path(), fn.Name()
		if recv := recvNamed(fn); recv != nil {
			if methods, ok := pureMethods[path]; ok {
				for _, m := range methods[recv.Obj().Name()] {
					if m == name {
						pass.Reportf(call.Pos(), "result of (%s.%s).%s call not used", path, recv.Obj().Name(), name)
						return true
					}
				}
			}
			return true
		}
		for pkg, names := range pureFuncs {
			if !analysis.PkgIs(path, pkg) {
				continue
			}
			for _, n := range names {
				if n == name {
					pass.Reportf(call.Pos(), "result of %s.%s call not used", pkg, name)
					return true
				}
			}
		}
		return true
	})
	return nil
}

func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return analysis.NamedRecv(sig.Recv().Type())
}
