// Package a holds copylocks positive and negative cases.
package a

import "sync"

type store struct {
	mu sync.Mutex
	n  int
}

func byValue(s store) int { // want `function passes lock by value: store contains mu contains sync\.Mutex`
	return s.n
}

func byPointer(s *store) int { return s.n }

func copies(s *store) {
	dup := *s // want `assignment copies lock value: store contains mu contains sync\.Mutex`
	_ = dup
}

func returnsLock(s *store) store { // want `function return passes lock by value: store contains mu contains sync\.Mutex`
	return *s // want `return copies lock value: store contains mu contains sync\.Mutex`
}

func ranges(items []store) int {
	total := 0
	for _, it := range items { // want `range var copies lock value: store contains mu contains sync\.Mutex`
		total += it.n
	}
	return total
}

func rangesPtr(items []*store) int {
	total := 0
	for _, it := range items {
		total += it.n
	}
	return total
}

func fresh() int {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
	s := store{}
	return s.n
}

func wgByValue(wg sync.WaitGroup) {} // want `function passes lock by value: sync\.WaitGroup`
