package copylocks_test

import (
	"testing"

	"genalg/internal/analysis/atest"
	"genalg/internal/analysis/passes/copylocks"
)

func TestCopyLocks(t *testing.T) {
	atest.Run(t, "testdata", "a", copylocks.Analyzer)
}
