// Package copylocks is a stdlib-only reimplementation of the stock
// go/analysis copylocks check, covering the sites this codebase actually
// hits: passing or returning a lock-containing value, copying one in an
// assignment or short declaration, and ranging over a slice of them by
// value. A copied sync.Mutex forks the lock state — both copies unlock
// independently and the guarded invariant silently evaporates.
package copylocks

import (
	"go/ast"
	"go/types"

	"genalg/internal/analysis"
)

// Analyzer is the copylocks-lite check.
var Analyzer = &analysis.Analyzer{
	Name: "copylocks",
	Doc: "check for locks erroneously passed, returned, assigned, or ranged over by value\n\n" +
		"A type contains a lock if it is (or embeds, or has a field/element of) a sync type " +
		"with a pointer-receiver Lock method.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkFuncType(pass, n.Type)
		case *ast.FuncLit:
			checkFuncType(pass, n.Type)
		case *ast.AssignStmt:
			checkAssign(pass, n)
		case *ast.RangeStmt:
			checkRange(pass, n)
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if path := lockPathOfExpr(pass.TypesInfo, r); path != "" {
					pass.Reportf(r.Pos(), "return copies lock value: %s", path)
				}
			}
		}
		return true
	})
	return nil
}

func checkFuncType(pass *analysis.Pass, ft *ast.FuncType) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := pass.TypesInfo.Types[field.Type]
			if !ok {
				continue
			}
			if path := lockPath(tv.Type); path != "" {
				pass.Reportf(field.Type.Pos(), "%s passes lock by value: %s", what, path)
			}
		}
	}
	check(ft.Params, "function")
	check(ft.Results, "function return")
}

func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
			continue // discarding a value does not create a second lock
		}
		if !copiesValue(rhs) {
			continue
		}
		if path := lockPathOfExpr(pass.TypesInfo, rhs); path != "" {
			pass.Reportf(as.Pos(), "assignment copies lock value: %s", path)
		}
	}
}

func checkRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	if rng.Value == nil {
		return
	}
	var t types.Type
	if id, ok := ast.Unparen(rng.Value).(*ast.Ident); ok {
		// Range vars in := form are definitions, absent from Types.
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			t = obj.Type()
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			t = obj.Type()
		}
	} else if tv, ok := pass.TypesInfo.Types[rng.Value]; ok {
		t = tv.Type
	}
	if t == nil {
		return
	}
	if path := lockPath(t); path != "" {
		pass.Reportf(rng.Value.Pos(), "range var copies lock value: %s", path)
	}
}

// copiesValue reports whether the expression reads an existing value (as
// opposed to constructing a fresh one, which is a legal way to obtain a
// zero-valued lock).
func copiesValue(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}

func lockPathOfExpr(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok {
		return ""
	}
	return lockPath(tv.Type)
}

// lockPath returns a human-readable path to the lock inside t ("" if t
// contains no lock). Pointers are free to copy.
func lockPath(t types.Type) string {
	return lockPathRec(t, 0)
}

func lockPathRec(t types.Type, depth int) string {
	if depth > 10 {
		return ""
	}
	if named, ok := t.(*types.Named); ok {
		if isLockType(named) {
			return named.Obj().Pkg().Name() + "." + named.Obj().Name()
		}
		return prefixNonEmpty(named.Obj().Name(), lockPathRec(named.Underlying(), depth+1))
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if p := lockPathRec(u.Field(i).Type(), depth+1); p != "" {
				return prefixNonEmpty(u.Field(i).Name(), p)
			}
		}
	case *types.Array:
		return lockPathRec(u.Elem(), depth+1)
	}
	return ""
}

// isLockType reports whether named is a sync primitive: it has a
// pointer-receiver Lock method (Mutex, RWMutex) or is one of the
// well-known uncopyable sync types.
func isLockType(named *types.Named) bool {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	if obj.Pkg().Path() == "sync" {
		switch obj.Name() {
		case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
			return true
		}
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Name() != "Lock" {
			continue
		}
		sig := m.Type().(*types.Signature)
		if sig.Params().Len() == 0 && sig.Results().Len() == 0 {
			if _, ptr := sig.Recv().Type().(*types.Pointer); ptr {
				return true
			}
		}
	}
	return false
}

func prefixNonEmpty(name, rest string) string {
	if rest == "" {
		return ""
	}
	if name == "" {
		return rest
	}
	return name + " contains " + rest
}
