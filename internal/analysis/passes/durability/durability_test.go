package durability_test

import (
	"testing"

	"genalg/internal/analysis/atest"
	"genalg/internal/analysis/passes/durability"
)

// TestDurabilityWAL covers the AppendTxn→WaitDurable obligation
// (including interprocedural discharge through summarized helpers) and
// the ApplyDML routing rule.
func TestDurabilityWAL(t *testing.T) {
	atest.Run(t, "testdata", "a", durability.Analyzer)
}

// TestDurabilityDaemon covers the genalgd ack-window rule.
func TestDurabilityDaemon(t *testing.T) {
	atest.Run(t, "testdata", "genalgd", durability.Analyzer)
}
