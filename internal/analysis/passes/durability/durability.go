// Package durability defines the genalgvet analyzer that enforces the
// ack-after-fsync contract around the WAL (PR 8):
//
//  1. An LSN returned by wal.Log.AppendTxn must reach WaitDurable (or a
//     helper whose pathflow summary proves it waits) on every path —
//     acknowledging a transaction whose frames are still in the OS page
//     cache is the exact bug kill -9 recovery exists to rule out.
//  2. Outside internal/db, table mutations must route through
//     DB.ApplyDML (the only path that logs, syncs, and checkpoints);
//     calling Table.Insert/Delete directly writes heap pages the WAL
//     knows nothing about, so a crash silently forgets them.
//  3. In genalgd, a wire response carrying a statement result must be
//     written inside the beginWork/endWork inflight window and never
//     from a spawned goroutine: drain waits on that window so every
//     acknowledged statement's ack reaches the wire before connections
//     close. Error/rejection responses (composite literals setting Error
//     or Draining) are exempt — they are refusals, not acks.
//
// Test files are exempt from all three: crash-injection tests
// deliberately append without syncing, and test setup seeds tables
// directly.
package durability

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"genalg/internal/analysis"
	"genalg/internal/analysis/pathflow"
)

// Analyzer is the durability check.
var Analyzer = &analysis.Analyzer{
	Name: "durability",
	Doc: "check ack-after-fsync: AppendTxn LSNs reach WaitDurable, mutations route through ApplyDML, genalgd acks stay in the drain window\n\n" +
		"The WaitDurable obligation is path-sensitive and interprocedural (a helper summarized as waiting " +
		"discharges it); returning or storing the LSN hands the obligation to the new owner.",
	Run:   run,
	Facts: []*analysis.FactComputer{analysis.PathflowFacts},
}

func run(pass *analysis.Pass) error {
	inDB := analysis.PkgIs(pass.Pkg.Path(), "db")
	inDaemon := analysis.PkgIs(pass.Pkg.Path(), "genalgd")
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		analysis.WalkStack([]*ast.File{file}, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkAppendTxn(pass, n, stack)
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isAppendTxn(pass.TypesInfo, call) {
					pass.Reportf(call.Pos(), "LSN from AppendTxn dropped: nothing can WaitDurable for this transaction")
				}
			case *ast.CallExpr:
				if !inDB {
					checkDirectMutation(pass, n)
				}
				if inDaemon {
					checkAckWindow(pass, n, stack)
				}
			}
			return true
		})
	}
	return nil
}

func isAppendTxn(info *types.Info, call *ast.CallExpr) bool {
	return analysis.IsMethodCall(info, call, "wal", "Log", "AppendTxn")
}

// checkAppendTxn enforces invariant 1 at `lsn, err := log.AppendTxn(...)`.
func checkAppendTxn(pass *analysis.Pass, s *ast.AssignStmt, stack []ast.Node) {
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok || !isAppendTxn(pass.TypesInfo, call) || len(s.Lhs) != 2 {
		return
	}
	lsnObj := lhsObj(pass.TypesInfo, s.Lhs[0])
	if lsnObj == nil {
		pass.Reportf(call.Pos(), "LSN from AppendTxn dropped: nothing can WaitDurable for this transaction")
		return
	}
	errObj := lhsObj(pass.TypesInfo, s.Lhs[1])
	fn := analysis.EnclosingFunc(stack)
	if fn == nil {
		return
	}
	sums := pass.Facts.Pathflow()
	ob := &pathflow.Obligation{
		Info: pass.TypesInfo,
		Releases: func(rel *ast.CallExpr) bool {
			callee := analysis.CalleeFunc(pass.TypesInfo, rel)
			if callee != nil && callee.Name() == "WaitDurable" &&
				len(rel.Args) >= 1 && identIs(pass.TypesInfo, rel.Args[0], lsnObj) {
				return true
			}
			if sum, ok := sums.Lookup(callee); ok {
				for _, i := range sum.Waits {
					if i < len(rel.Args) && identIs(pass.TypesInfo, rel.Args[i], lsnObj) {
						return true
					}
				}
			}
			return false
		},
		// Returning/storing the LSN hands the wait obligation to the new
		// owner. Passing it to a call does NOT (an LSN riding through a
		// log line must not silence the check); helpers that genuinely
		// wait are credited through their pathflow summary instead.
		Escapes: func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if mentions(pass.TypesInfo, r, lsnObj) {
						return true
					}
				}
			case *ast.AssignStmt:
				for i, r := range n.Rhs {
					if i < len(n.Lhs) && isBlank(n.Lhs[i]) {
						continue
					}
					if mentions(pass.TypesInfo, r, lsnObj) {
						return true
					}
				}
			case *ast.SendStmt:
				return mentions(pass.TypesInfo, n.Value, lsnObj)
			}
			return false
		},
		ErrVar: errObj,
	}
	leak, ok := ob.Check(fn, s)
	if !ok || leak == nil {
		return
	}
	line := pass.Fset.Position(leak.At.End()).Line
	pass.Reportf(call.Pos(), "LSN from AppendTxn does not reach WaitDurable on every path (%s, line %d): acknowledging before fsync breaks kill -9 durability",
		leak.Kind, line)
}

// checkDirectMutation enforces invariant 2: Table.Insert/Table.Delete
// outside internal/db.
func checkDirectMutation(pass *analysis.Pass, call *ast.CallExpr) {
	for _, method := range []string{"Insert", "Delete"} {
		if analysis.IsMethodCall(pass.TypesInfo, call, "db", "Table", method) {
			pass.Reportf(call.Pos(), "direct Table.%s bypasses the WAL: route the mutation through DB.ApplyDML so it is logged, fsynced, and checkpointed", method)
			return
		}
	}
}

// checkAckWindow enforces invariant 3 at wire.WriteMessage calls in
// genalgd.
func checkAckWindow(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	if !analysis.IsPkgFuncCall(pass.TypesInfo, call, "wire", "WriteMessage") || len(call.Args) < 2 {
		return
	}
	if isErrorResponse(ast.Unparen(call.Args[1])) {
		return
	}
	for _, n := range stack {
		if _, ok := n.(*ast.GoStmt); ok {
			pass.Reportf(call.Pos(), "wire response written from a spawned goroutine: the ack escapes the inflight window drain waits on")
			return
		}
	}
	fn := analysis.EnclosingFunc(stack)
	if fn == nil {
		return
	}
	_, body := analysis.FuncParts(fn)
	begin, end := workWindow(body)
	if !begin.IsValid() || call.Pos() < begin || (end.IsValid() && call.Pos() > end) {
		pass.Reportf(call.Pos(), "wire response written outside the beginWork/endWork inflight window: drain can close the connection before this ack reaches the wire")
	}
}

// isErrorResponse reports whether e constructs an error/refusal response:
// a (possibly &-ed) composite literal setting Error or Draining.
func isErrorResponse(e ast.Expr) bool {
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = ast.Unparen(u.X)
	}
	comp, ok := e.(*ast.CompositeLit)
	if !ok {
		return false
	}
	for _, elt := range comp.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && (key.Name == "Error" || key.Name == "Draining") {
			return true
		}
	}
	return false
}

// workWindow finds the positions of the first beginWork and last endWork
// calls in body (token.NoPos when absent).
func workWindow(body *ast.BlockStmt) (begin, end token.Pos) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "beginWork":
				if !begin.IsValid() {
					begin = call.Pos()
				}
			case "endWork":
				if call.Pos() > end {
					end = call.Pos()
				}
			}
		}
		return true
	})
	return
}

func lhsObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if def, ok := info.Defs[id]; ok && def != nil {
		return def
	}
	return info.Uses[id]
}

func identIs(info *types.Info, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && (info.Uses[id] == obj || info.Defs[id] == obj)
}

func mentions(info *types.Info, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
			found = true
		}
		return true
	})
	return found
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}
