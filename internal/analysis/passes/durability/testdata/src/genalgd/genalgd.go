// Package genalgd holds fixtures for the daemon ack-window invariant:
// result responses are written between beginWork and endWork and never
// from a spawned goroutine; error/refusal responses are exempt.
package genalgd

import (
	"io"

	"wire"
)

type server struct{}

func (s *server) beginWork() bool { return true }
func (s *server) endWork()        {}

// Ack inside the inflight window: clean.
func (s *server) handleOK(w io.Writer, id uint64) {
	if !s.beginWork() {
		return
	}
	resp := &wire.Response{ID: id, Result: "ok"}
	_ = wire.WriteMessage(w, resp)
	s.endWork()
}

// Refusals are not acks: clean anywhere.
func (s *server) refuse(w io.Writer, id uint64) {
	_ = wire.WriteMessage(w, &wire.Response{ID: id, Error: "draining", Draining: true})
}

// Refusing from the admission goroutine is fine too: clean.
func (s *server) asyncRefuse(w io.Writer, id uint64) {
	go func() {
		_ = wire.WriteMessage(w, &wire.Response{ID: id, Error: "over capacity"})
	}()
}

// A result ack from a spawned goroutine escapes the drain window.
func (s *server) asyncAck(w io.Writer, id uint64) {
	if !s.beginWork() {
		return
	}
	defer s.endWork()
	go func() {
		_ = wire.WriteMessage(w, &wire.Response{ID: id, Result: "ok"}) // want `wire response written from a spawned goroutine`
	}()
}

// A result ack after endWork races the drain.
func (s *server) lateAck(w io.Writer, id uint64) {
	if !s.beginWork() {
		return
	}
	s.endWork()
	_ = wire.WriteMessage(w, &wire.Response{ID: id, Result: "ok"}) // want `wire response written outside the beginWork/endWork inflight window`
}

// A result ack with no window at all.
func (s *server) bareAck(w io.Writer, id uint64) {
	_ = wire.WriteMessage(w, &wire.Response{ID: id, Result: "ok"}) // want `wire response written outside the beginWork/endWork inflight window`
}
