// Package db stubs tables for durability fixtures. Because this package
// IS db, its own direct mutations are exempt — ApplyDML has to call
// Insert somehow.
package db

type Row struct{}

// Table mimics genalg/internal/db.Table.
type Table struct{}

func (t *Table) Insert(r Row) error      { return nil }
func (t *Table) Delete(key string) error { return nil }

// DB mimics genalg/internal/db.DB.
type DB struct{ T *Table }

// ApplyDML is the sanctioned mutation path.
func (d *DB) ApplyDML(stmt string) error {
	if err := d.T.Insert(Row{}); err != nil {
		return err
	}
	return d.T.Delete("k")
}
