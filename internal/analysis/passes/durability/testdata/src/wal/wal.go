// Package wal stubs the write-ahead log for durability fixtures.
package wal

// Log mimics genalg/internal/wal.Log.
type Log struct{}

func (l *Log) AppendTxn(frames [][]byte) (int64, error) { return 0, nil }
func (l *Log) WaitDurable(lsn int64) error              { return nil }

// SyncTo waits for lsn (nil log means logging is disabled and there is
// nothing to wait for); summarized as Waits=[1].
func SyncTo(l *Log, lsn int64) error {
	if l == nil {
		return nil
	}
	return l.WaitDurable(lsn)
}
