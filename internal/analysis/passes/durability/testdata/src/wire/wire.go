// Package wire stubs the protocol layer for durability fixtures.
package wire

import "io"

// Response mimics genalg/internal/wire.Response.
type Response struct {
	ID       uint64
	Result   string
	Error    string
	Draining bool
}

func WriteMessage(w io.Writer, v any) error { return nil }
