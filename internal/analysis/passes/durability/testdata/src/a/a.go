// Package a holds durability fixtures for the WAL invariants: every
// AppendTxn LSN reaches WaitDurable on every path (directly, through a
// summarized helper, or by handing the LSN to a new owner), and table
// mutations outside db route through ApplyDML.
package a

import (
	"db"
	"wal"
)

var keepLSN int64

func logf(format string, args ...any) {}

// waitLocal waits on every path; summarized as Waits=[1].
func waitLocal(l *wal.Log, lsn int64) error { return l.WaitDurable(lsn) }

// Direct WaitDurable behind the usual error check: clean.
func commitDirect(l *wal.Log, frames [][]byte) error {
	lsn, err := l.AppendTxn(frames)
	if err != nil {
		return err
	}
	return l.WaitDurable(lsn)
}

// Waiting through a same-package helper: clean via its summary.
func commitViaHelper(l *wal.Log, frames [][]byte) error {
	lsn, err := l.AppendTxn(frames)
	if err != nil {
		return err
	}
	return waitLocal(l, lsn)
}

// Waiting through a cross-package helper: clean via imported facts.
func commitViaWal(l *wal.Log, frames [][]byte) error {
	lsn, err := l.AppendTxn(frames)
	if err != nil {
		return err
	}
	return wal.SyncTo(l, lsn)
}

// Returning the LSN transfers the wait obligation to the caller: clean.
func commitReturns(l *wal.Log, frames [][]byte) (int64, error) {
	lsn, err := l.AppendTxn(frames)
	if err != nil {
		return 0, err
	}
	return lsn, nil
}

// Storing the LSN transfers the obligation to the new owner: clean.
func commitStores(l *wal.Log, frames [][]byte) error {
	lsn, err := l.AppendTxn(frames)
	if err != nil {
		return err
	}
	keepLSN = lsn
	return nil
}

// Waiting on only one branch acknowledges unsynced data on the other.
func commitMaybe(l *wal.Log, frames [][]byte, fast bool) error {
	lsn, err := l.AppendTxn(frames) // want `LSN from AppendTxn does not reach WaitDurable on every path`
	if err != nil {
		return err
	}
	if !fast {
		return l.WaitDurable(lsn)
	}
	return nil
}

// Discarding the LSN makes waiting impossible.
func commitDrops(l *wal.Log, frames [][]byte) {
	_, _ = l.AppendTxn(frames) // want `LSN from AppendTxn dropped`
}

// Logging the LSN is not waiting: a call argument does not discharge the
// obligation unless the callee's summary proves it waits.
func commitLogsOnly(l *wal.Log, frames [][]byte) error {
	lsn, err := l.AppendTxn(frames) // want `LSN from AppendTxn does not reach WaitDurable on every path`
	if err != nil {
		return err
	}
	logf("appended at %d", lsn)
	return nil
}

// Direct table mutations outside db bypass the WAL.
func seedDirect(t *db.Table) {
	_ = t.Insert(db.Row{}) // want `direct Table\.Insert bypasses the WAL`
}

func pruneDirect(t *db.Table) error {
	return t.Delete("old") // want `direct Table\.Delete bypasses the WAL`
}

// The sanctioned path: clean.
func viaDML(d *db.DB) error {
	return d.ApplyDML("DELETE FROM reads WHERE stale")
}
