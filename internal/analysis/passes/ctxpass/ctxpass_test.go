package ctxpass_test

import (
	"testing"

	"genalg/internal/analysis/atest"
	"genalg/internal/analysis/passes/ctxpass"
)

func TestCtxPass(t *testing.T) {
	atest.Run(t, "testdata", "a", ctxpass.Analyzer)
}
