// Package ctxpass defines the genalgvet analyzer that enforces context
// threading through the repository's `...Ctx` call chains. PR 4 split
// every traced entry point into a pair — `Foo` (convenience, builds its
// own background context) and `FooCtx` (threads the caller's) — and the
// value of the whole tracing substrate rests on the Ctx variants actually
// passing their context down. Two drift patterns break the chain and are
// caught here:
//
//  1. calling context.Background()/context.TODO() inside a function that
//     already has a context (by parameter or by Ctx-suffix convention),
//     which silently detaches cancellation, deadlines, and the active
//     trace span from everything below;
//  2. calling the plain variant of a callee that has a Ctx variant, which
//     drops the context even though a threading path exists.
//
// The idiomatic nil-normalization `if ctx == nil { ctx =
// context.Background() }` is recognized and exempt.
package ctxpass

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"genalg/internal/analysis"
)

// Analyzer is the ctxpass check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpass",
	Doc: "check that functions holding a context thread it: no context.Background()/TODO(), and no calling Foo when FooCtx exists\n\n" +
		"Applies inside any function that has a context.Context parameter or a Ctx-suffixed name " +
		"(closures inherit the property from their enclosing function). The nil-guard normalization " +
		"`if ctx == nil { ctx = context.Background() }` is allowed.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !inCtxFunc(pass.TypesInfo, stack, n) {
			return true
		}
		if isBackgroundOrTODO(pass.TypesInfo, call) {
			if !nilGuardNormalization(pass.TypesInfo, call, stack) {
				name := "context.Background"
				if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil {
					name = "context." + fn.Name()
				}
				pass.Reportf(call.Pos(), "%s() inside a context-bearing function: thread the caller's ctx instead", name)
			}
			return true
		}
		checkCtxVariant(pass, call)
		return true
	})
	return nil
}

// inCtxFunc reports whether the innermost function declaration enclosing
// the node — or any function literal between it and the node — carries a
// context: a context.Context parameter or a Ctx-suffixed name.
func inCtxFunc(info *types.Info, stack []ast.Node, n ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			if hasCtxParam(info, fn.Type) {
				return true
			}
			// Otherwise keep climbing: a closure inside a Ctx function
			// still has the captured ctx in scope.
		case *ast.FuncDecl:
			if strings.HasSuffix(fn.Name.Name, "Ctx") || hasCtxParam(info, fn.Type) {
				return true
			}
			return false
		}
	}
	return false
}

func hasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := info.Types[field.Type]; ok && analysis.IsContextType(tv.Type) {
			return true
		}
	}
	return false
}

func isBackgroundOrTODO(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return false
	}
	return fn.Name() == "Background" || fn.Name() == "TODO"
}

// nilGuardNormalization recognizes
//
//	if x == nil { x = context.Background() }
//
// (including derived variables, as in retry loops): the call must be the
// RHS of an assignment to a context variable, inside an if whose
// condition nil-checks that same variable.
func nilGuardNormalization(info *types.Info, call *ast.CallExpr, stack []ast.Node) bool {
	// Find the assignment directly above the call (allowing parens).
	var lhsObj types.Object
	for i := len(stack) - 1; i >= 0; i-- {
		as, ok := stack[i].(*ast.AssignStmt)
		if !ok {
			continue
		}
		if len(as.Rhs) == 1 && ast.Unparen(as.Rhs[0]) == call && len(as.Lhs) == 1 {
			if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					lhsObj = obj
				} else if obj := info.Defs[id]; obj != nil {
					lhsObj = obj
				}
			}
		}
		break
	}
	if lhsObj == nil || !analysis.IsContextType(lhsObj.Type()) {
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		if cond, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr); ok && cond.Op == token.EQL {
			if isNilCheckOf(info, cond, lhsObj) {
				return true
			}
		}
	}
	return false
}

func isNilCheckOf(info *types.Info, cond *ast.BinaryExpr, obj types.Object) bool {
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == obj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isObj(cond.X) && isNil(cond.Y)) || (isObj(cond.Y) && isNil(cond.X))
}

// checkCtxVariant flags calls to Foo where FooCtx exists (method set or
// package scope) with a leading context parameter.
func checkCtxVariant(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || strings.HasSuffix(fn.Name(), "Ctx") {
		return
	}
	// Already threading: a call whose arguments include a context is
	// context-aware regardless of naming.
	for _, arg := range call.Args {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && analysis.IsContextType(tv.Type) {
			return
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	variantName := fn.Name() + "Ctx"
	var variant *types.Func
	if recv := sig.Recv(); recv != nil {
		ms := types.NewMethodSet(recv.Type())
		if sel := ms.Lookup(fn.Pkg(), variantName); sel != nil {
			variant, _ = sel.Obj().(*types.Func)
		}
	} else if fn.Pkg() != nil {
		variant, _ = fn.Pkg().Scope().Lookup(variantName).(*types.Func)
	}
	if variant == nil || !variant.Exported() && variant.Pkg() != pass.Pkg {
		return
	}
	vsig, ok := variant.Type().(*types.Signature)
	if !ok || vsig.Params().Len() == 0 || !analysis.IsContextType(vsig.Params().At(0).Type()) {
		return
	}
	pass.Reportf(call.Pos(), "call to %s drops the context: use %s(ctx, ...) inside a context-bearing function", fn.Name(), variantName)
}
