// Package a holds ctxpass positive and negative cases.
package a

import (
	"context"

	"lib"
)

// plain has no context: both rules are off here.
func plain() {
	ctx := context.Background()
	_ = ctx
	_ = lib.Work()
}

// hasCtx violates both rules.
func hasCtx(ctx context.Context) {
	c2 := context.Background() // want `context\.Background\(\) inside a context-bearing function`
	_ = c2
	_ = lib.Work() // want `call to Work drops the context: use WorkCtx`
	_ = lib.WorkCtx(ctx)
	lib.Solo()
}

// DoCtx is context-bearing by naming convention alone.
func DoCtx() {
	ctx := context.TODO() // want `context\.TODO\(\) inside a context-bearing function`
	_ = ctx
}

// normalize uses the sanctioned nil-guard idiom: clean.
func normalize(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

// normalizeDerived nil-guards a derived variable, as retry loops do: clean.
func normalizeDerived(ctx context.Context) context.Context {
	actx := ctx
	if actx == nil {
		actx = context.Background()
	}
	return actx
}

// closureInherits: a closure inside a ctx function still holds the ctx.
func closureInherits(ctx context.Context) func() {
	return func() {
		_ = context.Background() // want `context\.Background\(\) inside a context-bearing function`
	}
}

// methodVariant must use RunCtx.
func methodVariant(ctx context.Context, c *lib.Client) {
	c.Run() // want `call to Run drops the context: use RunCtx`
	c.RunCtx(ctx)
	c.Stop()
}

func local() {}

func localCtx(ctx context.Context) {}

// samePkgVariant: unexported pairs in the same package are checked too.
func samePkgVariant(ctx context.Context) {
	local() // want `call to local drops the context: use localCtx`
	localCtx(ctx)
}

// suppressed documents an intentional detach.
func suppressed(ctx context.Context) context.Context {
	//genalgvet:ignore ctxpass fixture: background job must outlive the request
	return context.Background()
}
