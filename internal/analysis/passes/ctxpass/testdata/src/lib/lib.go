// Package lib is a fixture library offering plain/Ctx call pairs.
package lib

import "context"

// Work is the convenience variant.
func Work() error { return nil }

// WorkCtx is the context-threading variant.
func WorkCtx(ctx context.Context) error { return nil }

// Solo has no Ctx variant.
func Solo() {}

// Client is a fixture receiver with a plain/Ctx method pair.
type Client struct{}

// Run is the convenience variant.
func (c *Client) Run() {}

// RunCtx is the context-threading variant.
func (c *Client) RunCtx(ctx context.Context) {}

// Stop has no Ctx variant.
func (c *Client) Stop() {}
