// Package lockio defines the genalgvet analyzer that keeps blocking work
// out of critical sections. The buffer pool, warehouse, and ETL layers
// all guard in-memory maps with sync.Mutex; holding one of those locks
// across pager reads, OS file I/O, network dials, or a parallel.Map
// fan-out serializes the whole subsystem behind a single disk seek (and,
// for the worker pool, can deadlock if a mapped function needs the same
// lock). The analyzer tracks Lock/RLock..Unlock/RUnlock windows
// structurally within each function and reports blocking calls inside
// them. Sites that hold a lock across I/O deliberately (the buffer
// pool's miss path) carry //genalgvet:ignore suppressions that double as
// design documentation.
package lockio

import (
	"go/ast"
	"go/types"
	"strings"

	"genalg/internal/analysis"
)

// Analyzer is the lockio check.
var Analyzer = &analysis.Analyzer{
	Name: "lockio",
	Doc: "check that no pager/disk/network I/O or parallel fan-out happens while a sync.Mutex or RWMutex is held\n\n" +
		"Blocking callees: storage.Pager methods, storage.BufferPool.{Pin,Allocate,FlushAll}, " +
		"os file I/O, package net/net-http calls, and parallel.{Map,MapAll,ForEach}.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				scanStmts(pass, fd.Body.List, map[string]bool{})
			}
		}
	}
	return nil
}

// scanStmts walks a statement list tracking which mutexes are held.
// Nested blocks get a copy of the held set; FuncLit bodies are not
// descended into (a closure's body does not necessarily run under the
// lock that is held where it is defined).
func scanStmts(pass *analysis.Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.ExprStmt:
			if key, acquired, ok := lockOp(pass.TypesInfo, st.X); ok {
				if acquired {
					held[key] = true
				} else {
					delete(held, key)
				}
				continue
			}
			checkExpr(pass, st.X, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held to function end; a
			// deferred blocking call itself runs after any same-function
			// unlocks, so it is not checked against the current window.
			continue
		case *ast.GoStmt:
			// The goroutine body runs without this goroutine's locks.
			continue
		case *ast.BlockStmt:
			scanStmts(pass, st.List, copyHeld(held))
		case *ast.IfStmt:
			checkStmtExprs(pass, st.Init, held)
			checkExpr(pass, st.Cond, held)
			scanStmts(pass, st.Body.List, copyHeld(held))
			if st.Else != nil {
				scanStmts(pass, []ast.Stmt{st.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			checkStmtExprs(pass, st.Init, held)
			if st.Cond != nil {
				checkExpr(pass, st.Cond, held)
			}
			checkStmtExprs(pass, st.Post, held)
			scanStmts(pass, st.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			checkExpr(pass, st.X, held)
			scanStmts(pass, st.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			checkStmtExprs(pass, st.Init, held)
			if st.Tag != nil {
				checkExpr(pass, st.Tag, held)
			}
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanStmts(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanStmts(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					scanStmts(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.LabeledStmt:
			scanStmts(pass, []ast.Stmt{st.Stmt}, held)
		default:
			checkStmtExprs(pass, s, held)
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// checkStmtExprs reports blocking calls in the expressions of a simple
// statement (assignments, returns, sends, ...).
func checkStmtExprs(pass *analysis.Pass, s ast.Stmt, held map[string]bool) {
	if s == nil || len(held) == 0 {
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			reportBlocking(pass, n, held)
		}
		return true
	})
}

func checkExpr(pass *analysis.Pass, e ast.Expr, held map[string]bool) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			reportBlocking(pass, n, held)
		}
		return true
	})
}

func reportBlocking(pass *analysis.Pass, call *ast.CallExpr, held map[string]bool) {
	desc, callee, ok := blockingCall(pass.TypesInfo, call)
	if !ok {
		return
	}
	locks := make([]string, 0, len(held))
	for k := range held {
		locks = append(locks, k)
	}
	// Deterministic message for the common single-lock case.
	lock := "a mutex"
	if len(locks) == 1 {
		lock = locks[0]
	}
	pass.Reportf(call.Pos(), "call to %s (%s) while %s is held: move the blocking work outside the critical section", callee, desc, lock)
}

// lockOp recognizes X.Lock()/RLock() (acquire) and X.Unlock()/RUnlock()
// (release) on sync.Mutex/RWMutex values, keyed by the receiver
// expression as written (e.g. "bp.mu").
func lockOp(info *types.Info, e ast.Expr) (key string, acquired, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	key = types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		return key, true, true
	case "Unlock", "RUnlock":
		return key, false, true
	}
	return "", false, false
}

var osBlocking = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true, "MkdirTemp": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Mkdir": true,
	"MkdirAll": true, "Stat": true, "Lstat": true, "Truncate": true,
}

var osFileBlocking = map[string]bool{
	"Read": true, "ReadAt": true, "Write": true, "WriteAt": true,
	"Sync": true, "Seek": true, "Close": true, "Truncate": true,
}

var pagerMethods = map[string]bool{
	"Read": true, "Write": true, "Allocate": true, "Sync": true,
}

var bufferPoolBlocking = map[string]bool{
	"Pin": true, "Allocate": true, "FlushAll": true,
}

var parallelFanout = map[string]bool{
	"Map": true, "MapAll": true, "ForEach": true,
}

// blockingCall classifies a call as blocking I/O or fan-out work that
// must not run under a lock. It returns a short kind description and the
// callee's display name.
func blockingCall(info *types.Info, call *ast.CallExpr) (desc, callee string, ok bool) {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", "", false
	}
	path := fn.Pkg().Path()
	name := fn.Name()
	recv := recvTypeName(fn)

	switch {
	case path == "os" && recv == "" && osBlocking[name]:
		return "file I/O", "os." + name, true
	case path == "os" && recv == "File" && osFileBlocking[name]:
		return "file I/O", "os.File." + name, true
	case path == "net" || path == "net/http" || strings.HasPrefix(path, "net/"):
		return "network I/O", lastSeg(path) + "." + withRecv(recv, name), true
	case analysis.PkgIs(path, "parallel") && recv == "" && parallelFanout[name]:
		return "worker-pool fan-out", "parallel." + name, true
	case analysis.PkgIs(path, "storage") && recv == "Pager" && pagerMethods[name]:
		return "pager I/O", "Pager." + name, true
	case analysis.PkgIs(path, "storage") && recv == "BufferPool" && bufferPoolBlocking[name]:
		return "buffer-pool I/O", "BufferPool." + name, true
	}
	return "", "", false
}

// recvTypeName returns the bare named type of fn's receiver ("" for
// package-level functions), looking through pointers.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func withRecv(recv, name string) string {
	if recv == "" {
		return name
	}
	return recv + "." + name
}

func lastSeg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
