package lockio_test

import (
	"testing"

	"genalg/internal/analysis/atest"
	"genalg/internal/analysis/passes/lockio"
)

func TestLockIO(t *testing.T) {
	atest.Run(t, "testdata", "a", lockio.Analyzer)
}
