// Package parallel is a fixture stand-in for genalg/internal/parallel.
package parallel

import "context"

// Map runs f over n items on the worker pool, failing fast.
func Map(ctx context.Context, n int, f func(int) error) error { return nil }

// MapAll runs f over n items, collecting all errors.
func MapAll(ctx context.Context, n int, f func(int) error) []error { return nil }

// ForEach runs f over n items with no error reporting.
func ForEach(ctx context.Context, n int, f func(int)) {}
