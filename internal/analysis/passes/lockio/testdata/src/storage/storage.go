// Package storage is a fixture stand-in for genalg/internal/storage.
package storage

// PageID identifies a page.
type PageID uint64

// Page is a fixture page.
type Page struct{ Data []byte }

// Pager mimics the real disk pager interface.
type Pager interface {
	Read(id PageID, p *Page) error
	Write(id PageID, p *Page) error
	Allocate() (PageID, error)
	Sync() error
}

// BufferPool mimics the real buffer pool.
type BufferPool struct{}

// Pin fetches a page, possibly from disk.
func (bp *BufferPool) Pin(id PageID) (*Page, error) { return nil, nil }

// Unpin releases a pin; purely in-memory.
func (bp *BufferPool) Unpin(id PageID, dirty bool) error { return nil }

// Allocate creates a fresh page.
func (bp *BufferPool) Allocate() (PageID, *Page, error) { return 0, nil, nil }

// FlushAll writes every dirty page back.
func (bp *BufferPool) FlushAll() error { return nil }
