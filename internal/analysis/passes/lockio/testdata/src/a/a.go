// Package a holds lockio positive and negative cases.
package a

import (
	"context"
	"net"
	"os"
	"sync"

	"parallel"
	"storage"
)

type store struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	pager storage.Pager
	bp    *storage.BufferPool
	m     map[string]int
}

// readUnderLock holds the mutex across a pager read.
func (s *store) readUnderLock(id storage.PageID, p *storage.Page) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pager.Read(id, p) // want `call to Pager\.Read \(pager I/O\) while s\.mu is held`
}

// windowed releases the lock before touching the disk: clean.
func (s *store) windowed(path string) ([]byte, error) {
	s.mu.Lock()
	v := s.m["k"]
	s.mu.Unlock()
	_ = v
	return os.ReadFile(path)
}

// osUnderLock does file I/O inside an explicit Lock..Unlock window.
func (s *store) osUnderLock(path string) {
	s.mu.Lock()
	b, _ := os.ReadFile(path) // want `call to os\.ReadFile \(file I/O\) while s\.mu is held`
	_ = b
	s.mu.Unlock()
}

// fanoutUnderLock dispatches to the worker pool while locked.
func (s *store) fanoutUnderLock(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	parallel.ForEach(ctx, 4, func(i int) {}) // want `call to parallel\.ForEach \(worker-pool fan-out\) while s\.mu is held`
}

// rlockSync holds a read lock across a pager sync.
func (s *store) rlockSync() error {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.pager.Sync() // want `call to Pager\.Sync \(pager I/O\) while s\.rw is held`
}

// pinUnderLock pins (possible disk read) inside the critical section.
func (s *store) pinUnderLock(id storage.PageID) {
	s.mu.Lock()
	pg, err := s.bp.Pin(id) // want `call to BufferPool\.Pin \(buffer-pool I/O\) while s\.mu is held`
	_, _ = pg, err
	s.mu.Unlock()
}

// unpinUnderLock is fine: Unpin is purely in-memory.
func (s *store) unpinUnderLock(id storage.PageID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.bp.Unpin(id, false)
}

// dialUnderLock opens a network connection while locked.
func (s *store) dialUnderLock(addr string) (net.Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return net.Dial("tcp", addr) // want `call to net\.Dial \(network I/O\) while s\.mu is held`
}

// closureDefined only defines a closure under the lock: clean.
func (s *store) closureDefined(path string) func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := func() { _, _ = os.ReadFile(path) }
	return f
}

// branchScoped acquires inside a branch; I/O after the branch is clean.
func (s *store) branchScoped(path string, cond bool) {
	if cond {
		s.mu.Lock()
		s.m["k"]++
		s.mu.Unlock()
	}
	_, _ = os.ReadFile(path)
}

// suppressed documents a deliberate lock-held read, as the buffer pool's
// miss path does.
func (s *store) suppressed(id storage.PageID, p *storage.Page) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//genalgvet:ignore lockio fixture: miss path must read under the lock to stay coherent
	return s.pager.Read(id, p)
}
