// Package errclass defines the genalgvet analyzer that enforces error
// classification at the sources.Repository boundary. The ETL retry loop
// and circuit breakers decide what to do with a failure by asking
// sources.IsTransient/IsPermanent; an unclassified error falls through to
// the conservative default and either burns retry budget on a hopeless
// source or gives up on a recoverable one. The analyzer inspects every
// method that implements a Repository accessor (Fetch, ReadLog,
// Subscribe) on a Repository-implementing type and requires each
// returned error to be nil, wrapped by sources.Transient/Permanent, a
// context cancellation (ctx.Err() and the context sentinels are
// design-sanctioned: IsTransient understands deadlines), or delegated
// from another Repository accessor that already classified it.
package errclass

import (
	"go/ast"
	"go/types"

	"genalg/internal/analysis"
)

// accessors are the error-returning Repository methods.
var accessors = map[string]bool{"Fetch": true, "ReadLog": true, "Subscribe": true}

// Analyzer is the errclass check.
var Analyzer = &analysis.Analyzer{
	Name: "errclass",
	Doc: "check that errors returned by sources.Repository implementations are classified Transient or Permanent\n\n" +
		"Sanctioned returns: nil, sources.Transient(...), sources.Permanent(...), ctx.Err(), the context " +
		"sentinels, and delegation to another Repository accessor.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	iface := repositoryInterface(pass.Pkg)
	if iface == nil {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !accessors[fd.Name.Name] {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || !implementsRepository(fn, iface) {
				continue
			}
			checkMethod(pass, fd)
		}
	}
	return nil
}

// repositoryInterface resolves sources.Repository from the package under
// analysis or its imports.
func repositoryInterface(pkg *types.Package) *types.Interface {
	lookup := func(p *types.Package) *types.Interface {
		if !analysis.PkgIs(p.Path(), "sources") {
			return nil
		}
		obj, ok := p.Scope().Lookup("Repository").(*types.TypeName)
		if !ok {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	if iface := lookup(pkg); iface != nil {
		return iface
	}
	for _, imp := range pkg.Imports() {
		if iface := lookup(imp); iface != nil {
			return iface
		}
	}
	return nil
}

func implementsRepository(fn *types.Func, iface *types.Interface) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// checkMethod inspects each return in fd (skipping nested closures) and
// reports unclassified error results. Identifier results are resolved
// through a flow-insensitive map of every assignment in the method: the
// identifier is classified only if all its recorded sources are.
func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl) {
	sig := pass.TypesInfo.Defs[fd.Name].(*types.Func).Type().(*types.Signature)
	res := sig.Results()
	if res.Len() == 0 || !isErrorType(res.At(res.Len()-1).Type()) {
		return
	}
	errIdx := res.Len() - 1

	assigns := collectAssigns(pass, fd.Body)
	walkSkippingFuncLits(fd.Body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return
		}
		var errExpr ast.Expr
		if len(ret.Results) == res.Len() {
			errExpr = ret.Results[errIdx]
		} else if len(ret.Results) == 1 {
			// return f() forwarding a multi-result call: treat the call
			// itself as the error source.
			errExpr = ret.Results[0]
		} else {
			return
		}
		if !classified(pass, errExpr, assigns, map[types.Object]bool{}) {
			pass.Reportf(errExpr.Pos(), "error returned across the sources.Repository boundary is not classified: wrap it with sources.Transient or sources.Permanent")
		}
	})
}

func walkSkippingFuncLits(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// collectAssigns records, for every identifier assigned in the method,
// all right-hand sides feeding it (a multi-value call RHS is recorded
// for each of its targets).
func collectAssigns(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object][]ast.Expr {
	assigns := map[types.Object][]ast.Expr{}
	record := func(id *ast.Ident, rhs ast.Expr) {
		var obj types.Object
		if o := pass.TypesInfo.Defs[id]; o != nil {
			obj = o
		} else if o := pass.TypesInfo.Uses[id]; o != nil {
			obj = o
		}
		if obj != nil {
			assigns[obj] = append(assigns[obj], rhs)
		}
	}
	walkSkippingFuncLits(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
			for _, lhs := range as.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
					record(id, as.Rhs[0])
				}
			}
			return
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
				record(id, as.Rhs[i])
			}
		}
	})
	return assigns
}

// classified reports whether expr is a sanctioned boundary error.
func classified(pass *analysis.Pass, expr ast.Expr, assigns map[types.Object][]ast.Expr, seen map[types.Object]bool) bool {
	expr = ast.Unparen(expr)
	switch e := expr.(type) {
	case *ast.Ident:
		if e.Name == "nil" {
			return true
		}
		obj := pass.TypesInfo.Uses[e]
		if obj == nil || seen[obj] {
			return false
		}
		srcs := assigns[obj]
		if len(srcs) == 0 {
			return false
		}
		seen[obj] = true
		for _, src := range srcs {
			if !classified(pass, src, assigns, seen) {
				return false
			}
		}
		return true
	case *ast.CallExpr:
		if analysis.IsPkgFuncCall(pass.TypesInfo, e, "sources", "Transient", "Permanent") {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, e)
		if fn == nil {
			return false
		}
		// ctx.Err(): cancellation crossing the boundary is sanctioned.
		if fn.Name() == "Err" && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
			return true
		}
		// Delegation to another Repository accessor: the inner
		// implementation already classified its errors.
		if accessors[fn.Name()] {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
		}
		return false
	case *ast.SelectorExpr:
		// context.Canceled / context.DeadlineExceeded sentinels.
		if fn := pass.TypesInfo.Uses[e.Sel]; fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
			return fn.Name() == "Canceled" || fn.Name() == "DeadlineExceeded"
		}
		return false
	}
	return false
}

func isErrorType(t types.Type) bool {
	return t.String() == "error"
}
