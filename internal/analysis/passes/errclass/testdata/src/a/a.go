// Package a holds errclass positive and negative cases.
package a

import (
	"context"
	"errors"
	"fmt"
	"os"

	"sources"
)

// base supplies the non-accessor half of the Repository interface.
type base struct{}

func (base) Name() string                   { return "fixture" }
func (base) Format() sources.Format         { return 0 }
func (base) Capability() sources.Capability { return 0 }

// good returns only sanctioned boundary errors.
type good struct{ base }

func (g *good) Fetch(ctx context.Context) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	b, err := os.ReadFile("dump.fasta")
	if err != nil {
		return "", sources.Transient("fetch", "fixture", err)
	}
	return string(b), nil
}

func (g *good) ReadLog(ctx context.Context, afterSeq int) ([]sources.LogEntry, error) {
	if afterSeq < 0 {
		return nil, sources.Permanent("read-log", "fixture", errors.New("negative seq"))
	}
	return nil, context.Canceled
}

func (g *good) Subscribe(buffer int) (<-chan sources.Mutation, func(), error) {
	return nil, nil, nil
}

// raw leaks unclassified errors across the boundary.
type raw struct{ base }

func (r *raw) Fetch(ctx context.Context) (string, error) {
	if ctx.Err() != nil {
		return "", ctx.Err()
	}
	return "", fmt.Errorf("corrupt dump") // want `error returned across the sources\.Repository boundary is not classified`
}

func (r *raw) ReadLog(ctx context.Context, afterSeq int) ([]sources.LogEntry, error) {
	b, err := os.ReadFile("dump.log")
	_ = b
	if err != nil {
		return nil, err // want `error returned across the sources\.Repository boundary is not classified`
	}
	return nil, nil
}

func (r *raw) Subscribe(buffer int) (<-chan sources.Mutation, func(), error) {
	return nil, nil, errors.New("no trigger support") // want `error returned across the sources\.Repository boundary is not classified`
}

// delegate forwards to an inner Repository: already classified.
type delegate struct {
	base
	inner sources.Repository
}

func (d *delegate) Fetch(ctx context.Context) (string, error) {
	dump, err := d.inner.Fetch(ctx)
	if err != nil {
		return "", err
	}
	return dump, nil
}

func (d *delegate) ReadLog(ctx context.Context, afterSeq int) ([]sources.LogEntry, error) {
	return d.inner.ReadLog(ctx, afterSeq)
}

func (d *delegate) Subscribe(buffer int) (<-chan sources.Mutation, func(), error) {
	return d.inner.Subscribe(buffer)
}

// notRepo has a Fetch method but does not implement Repository: the
// boundary rule does not apply.
type notRepo struct{}

func (n *notRepo) Fetch(ctx context.Context) (string, error) {
	return "", fmt.Errorf("raw but fine: not a Repository")
}

// hushed documents an intentional raw return.
type hushed struct{ base }

func (h *hushed) Fetch(ctx context.Context) (string, error) {
	//genalgvet:ignore errclass fixture: sentinel surfaced raw for the driver test
	return "", errImpossible
}

func (h *hushed) ReadLog(ctx context.Context, afterSeq int) ([]sources.LogEntry, error) {
	return nil, nil
}

func (h *hushed) Subscribe(buffer int) (<-chan sources.Mutation, func(), error) {
	return nil, nil, nil
}

var errImpossible = errors.New("unreachable")
