// Package sources is a fixture stand-in for genalg/internal/sources.
package sources

import (
	"context"
	"fmt"
)

// Format mimics the dump format enum.
type Format int

// Capability mimics the source capability bitmask.
type Capability int

// LogEntry mimics a change-log record.
type LogEntry struct{ Seq int }

// Mutation mimics an active-source trigger event.
type Mutation struct{}

// Repository mimics the real error-capable source-access interface.
type Repository interface {
	Name() string
	Format() Format
	Capability() Capability
	Fetch(ctx context.Context) (string, error)
	ReadLog(ctx context.Context, afterSeq int) ([]LogEntry, error)
	Subscribe(buffer int) (<-chan Mutation, func(), error)
}

// Transient wraps err as retryable.
func Transient(op, source string, err error) error {
	return fmt.Errorf("sources: %s %s: transient: %w", op, source, err)
}

// Permanent wraps err as unretryable.
func Permanent(op, source string, err error) error {
	return fmt.Errorf("sources: %s %s: permanent: %w", op, source, err)
}
