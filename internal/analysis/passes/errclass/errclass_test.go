package errclass_test

import (
	"testing"

	"genalg/internal/analysis/atest"
	"genalg/internal/analysis/passes/errclass"
)

func TestErrClass(t *testing.T) {
	atest.Run(t, "testdata", "a", errclass.Analyzer)
}
