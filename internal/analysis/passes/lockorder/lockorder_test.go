package lockorder_test

import (
	"testing"

	"genalg/internal/analysis/atest"
	"genalg/internal/analysis/passes/lockorder"
)

func TestLockOrder(t *testing.T) {
	atest.Run(t, "testdata", "a", lockorder.Analyzer)
}
