// Package a holds lockorder fixtures: acquisition-order cycles
// (including one side discovered only through the merged edge graph),
// re-entrant acquisition directly and through a helper, and locks held
// across durability waits and peer network I/O — directly, through a
// same-package helper, and through a cross-package helper via facts.
package a

import (
	"net"
	"sync"

	"wal"
)

type catalog struct{ mu sync.Mutex }
type heap struct{ mu sync.Mutex }
type index struct{ mu sync.Mutex }

// Consistent nesting order everywhere: clean.
func lockOne(c *catalog, ix *index) {
	c.mu.Lock()
	ix.mu.Lock()
	ix.mu.Unlock()
	c.mu.Unlock()
}

func lockTwo(c *catalog, ix *index) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ix.mu.Lock()
	defer ix.mu.Unlock()
}

// Opposite orders in lockAB and lockBA: both acquisition sites complete
// a cycle in the merged graph, so both are reported.
func lockAB(c *catalog, h *heap) {
	c.mu.Lock()
	h.mu.Lock() // want `lock-order cycle: acquiring a\.heap\.mu while holding a\.catalog\.mu`
	h.mu.Unlock()
	c.mu.Unlock()
}

func lockBA(c *catalog, h *heap) {
	h.mu.Lock()
	c.mu.Lock() // want `lock-order cycle: acquiring a\.catalog\.mu while holding a\.heap\.mu`
	c.mu.Unlock()
	h.mu.Unlock()
}

// sync.Mutex is not re-entrant.
func double(c *catalog) {
	c.mu.Lock()
	c.mu.Lock() // want `re-acquiring c\.mu while it is already held`
	c.mu.Unlock()
	c.mu.Unlock()
}

func lockIt(c *catalog) {
	c.mu.Lock()
	defer c.mu.Unlock()
}

// Re-entry through a helper is caught via the helper's summary.
func viaHelper(c *catalog) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lockIt(c) // want `call to lockIt acquires a\.catalog\.mu while it is already held`
}

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	w  *wal.Log
}

// A durability wait under the lock starves every competing acquirer.
func ackUnderLock(s *store, lsn int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.WaitDurable(lsn) // want `call to Log\.WaitDurable \(durability wait\) while s\.mu is held`
}

// Releasing first: clean.
func ackOutsideLock(s *store, lsn int64) error {
	s.mu.Lock()
	s.mu.Unlock()
	return s.w.WaitDurable(lsn)
}

func flushLocal(w *wal.Log, lsn int64) error { return w.WaitDurable(lsn) }

// The wait is reached through a same-package helper's summary.
func ackViaHelper(s *store, lsn int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return flushLocal(s.w, lsn) // want `call to flushLocal \(reaches durability wait\) while s\.mu is held`
}

// ... and through a cross-package helper via imported facts. A read
// lock counts: readers still deadlock against writers.
func ackViaCross(s *store, lsn int64) error {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return wal.Flush(s.w, lsn) // want `call to Flush \(reaches durability wait\) while s\.rw is held`
}

type conn struct {
	mu sync.Mutex
	c  net.Conn
}

// A stalled peer holds the lock hostage.
func send(c *conn, b []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.c.Write(b) // want `call to Conn\.Write \(peer network I/O\) while c\.mu is held`
	return err
}
