// Package wal stubs the write-ahead log for lockorder fixtures.
package wal

// Log mimics genalg/internal/wal.Log.
type Log struct{}

func (l *Log) AppendTxn(frames [][]byte) (int64, error) { return 0, nil }
func (l *Log) WaitDurable(lsn int64) error              { return nil }
func (l *Log) Sync() error                              { return nil }

// Flush waits for lsn; callers holding a lock inherit the block through
// the lockorder facts.
func Flush(l *Log, lsn int64) error { return l.WaitDurable(lsn) }
