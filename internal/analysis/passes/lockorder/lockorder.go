// Package lockorder defines the genalgvet analyzer that builds a
// whole-program mutex acquisition graph and reports lock-order cycles
// and locks held across long blocking waits.
//
// Each sync.Mutex/RWMutex use is abstracted to a lock CLASS: the named
// type owning the field ("db.DB.dmlMu"), a package-level variable
// ("wal.groupMu"), or a function-local variable ("loadgen.run.mu").
// Per-function facts record which classes a function acquires, which
// held→acquired edges it creates, and which blocking waits it can reach
// (WaitDurable, fsync, net.Conn reads/writes, wire framing I/O) — all
// transitively through the call graph via the facts side-channel. A
// cycle in the merged edge graph means two goroutines can take the same
// two locks in opposite orders and deadlock; a lock held across a
// durability wait or a stalled peer's write starves every competing
// acquirer for the full wait.
//
// Limits, by design: acquisition tracking is structural (the same
// shape lockio uses), goroutine and defer bodies run outside the
// current window, and two instances of the same class acquired
// back-to-back are only reported when the receiver expressions match
// textually (instance-ordering schemes cannot be proven here). RLock
// participates like Lock: read locks still deadlock against writers in
// a cycle.
package lockorder

import (
	"encoding/json"
	"go/ast"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"genalg/internal/analysis"
)

const domainName = "lockorder"

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "check for lock-order cycles and locks held across durability waits, fsyncs, or peer network I/O\n\n" +
		"Acquisition edges and reachable blocking waits are summarized per function and merged across " +
		"packages through the facts side-channel, so a cycle split between db and genalgd is still a cycle.",
	Run:   run,
	Facts: []*analysis.FactComputer{Facts},
}

// fnLocks is the per-function fact entry (transitive over callees).
type fnLocks struct {
	Acquires []string    `json:"acquires,omitempty"`
	Blocks   []string    `json:"blocks,omitempty"`
	Edges    [][2]string `json:"edges,omitempty"`
}

// Facts computes the lockorder domain.
var Facts = &analysis.FactComputer{
	Domain: domainName,
	Compute: func(pkg *analysis.Package, imported *analysis.FactSet) (map[string]json.RawMessage, error) {
		table := decodeTable(imported.Domain(domainName))
		local := computeLocal(pkg.Files, pkg.TypesInfo, table)
		out := map[string]json.RawMessage{}
		for k, v := range imported.Domain(domainName) {
			out[k] = v
		}
		for k, e := range local {
			raw, err := json.Marshal(e)
			if err != nil {
				return nil, err
			}
			out[k] = raw
		}
		return out, nil
	},
}

func decodeTable(entries map[string]json.RawMessage) map[string]*fnLocks {
	table := map[string]*fnLocks{}
	for k, raw := range entries {
		var e fnLocks
		if json.Unmarshal(raw, &e) == nil {
			table[k] = &e
		}
	}
	return table
}

// computeLocal summarizes every FuncDecl in pkg, iterating to a fixpoint
// so same-package helper chains resolve in any declaration order.
func computeLocal(files []*ast.File, info *types.Info, table map[string]*fnLocks) map[string]*fnLocks {
	type decl struct {
		fd  *ast.FuncDecl
		key string
	}
	var decls []decl
	for _, file := range files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, decl{fd, fn.FullName()})
		}
	}
	for iter := 0; iter < 10; iter++ {
		changed := false
		for _, d := range decls {
			e := summarizeFn(info, d.fd, table)
			if !reflect.DeepEqual(table[d.key], e) {
				table[d.key] = e
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	local := map[string]*fnLocks{}
	for _, d := range decls {
		local[d.key] = table[d.key]
	}
	return local
}

// summarizeFn collects fd's acquisitions, edges, and reachable blocking
// waits, inheriting from callees through table.
func summarizeFn(info *types.Info, fd *ast.FuncDecl, table map[string]*fnLocks) *fnLocks {
	e := &fnLocks{}
	acquires := map[string]bool{}
	blocks := map[string]bool{}
	edges := map[[2]string]bool{}
	sc := &scanner{
		info:   info,
		fnName: fd.Name.Name,
		table:  table,
		acquire: func(call *ast.CallExpr, id, expr, via string, held []heldLock) {
			acquires[id] = true
			for _, h := range held {
				edges[[2]string{h.id, id}] = true
			}
		},
		blocked: func(call *ast.CallExpr, kind, callee string, held []heldLock) {
			blocks[strings.TrimPrefix(kind, "reaches ")] = true
		},
		inherit: func(sub *fnLocks) {
			for _, ed := range sub.Edges {
				edges[ed] = true
			}
		},
	}
	sc.stmts(fd.Body.List, nil)
	e.Acquires = sortedKeys(acquires)
	e.Blocks = sortedKeys(blocks)
	for ed := range edges {
		e.Edges = append(e.Edges, ed)
	}
	sort.Slice(e.Edges, func(i, j int) bool {
		if e.Edges[i][0] != e.Edges[j][0] {
			return e.Edges[i][0] < e.Edges[j][0]
		}
		return e.Edges[i][1] < e.Edges[j][1]
	})
	return e
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func run(pass *analysis.Pass) error {
	table := decodeTable(pass.Facts.Domain(domainName))
	if len(table) == 0 {
		// No facts channel (bare Run): degrade to package-local analysis.
		table = computeLocal(pass.Files, pass.TypesInfo, table)
	}
	graph := map[string]map[string]bool{}
	for _, e := range table {
		for _, ed := range e.Edges {
			if graph[ed[0]] == nil {
				graph[ed[0]] = map[string]bool{}
			}
			graph[ed[0]][ed[1]] = true
		}
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sc := &scanner{
				info:   pass.TypesInfo,
				fnName: fd.Name.Name,
				table:  table,
				acquire: func(call *ast.CallExpr, id, expr, via string, held []heldLock) {
					reportAcquire(pass, graph, call, id, expr, via, held)
				},
				blocked: func(call *ast.CallExpr, kind, callee string, held []heldLock) {
					if len(held) == 0 {
						return
					}
					lock := "a mutex"
					if len(held) == 1 {
						lock = held[0].expr
					}
					pass.Reportf(call.Pos(), "call to %s (%s) while %s is held: every goroutine contending for the lock stalls behind the wait", callee, kind, lock)
				},
			}
			sc.stmts(fd.Body.List, nil)
		}
	}
	return nil
}

// reportAcquire checks one acquisition (direct, or via a summarized
// callee) against the locks currently held.
func reportAcquire(pass *analysis.Pass, graph map[string]map[string]bool, call *ast.CallExpr, id, expr, via string, held []heldLock) {
	for _, h := range held {
		if h.id == id {
			switch {
			case via != "":
				pass.Reportf(call.Pos(), "call to %s acquires %s while it is already held: re-entrant locking deadlocks", via, id)
			case h.expr == expr:
				pass.Reportf(call.Pos(), "re-acquiring %s while it is already held: sync.Mutex is not re-entrant", expr)
			}
			// Same class, different receiver expression: instance
			// ordering is not provable here; stay silent.
			continue
		}
		if path := reach(graph, id, h.id); path != nil {
			cycle := append([]string{h.id}, path...)
			pass.Reportf(call.Pos(), "lock-order cycle: acquiring %s while holding %s, but elsewhere the order is reversed (%s): goroutines taking the locks in opposite orders deadlock",
				id, h.id, strings.Join(cycle, " -> "))
		}
	}
}

// reach returns a path id -> ... -> target in the edge graph (BFS), or
// nil when target is unreachable.
func reach(graph map[string]map[string]bool, id, target string) []string {
	parent := map[string]string{id: ""}
	queue := []string{id}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for next := range graph[cur] {
			if _, seen := parent[next]; seen {
				continue
			}
			parent[next] = cur
			if next == target {
				var path []string
				for n := target; n != ""; n = parent[n] {
					path = append([]string{n}, path...)
				}
				return path
			}
			queue = append(queue, next)
		}
	}
	return nil
}

// heldLock is one entry of the ordered held-locks list: the lock class
// and the receiver expression as written.
type heldLock struct{ id, expr string }

// scanner walks a function body tracking held locks, firing acquire and
// blocked events. It mirrors lockio's structural walker: branch bodies
// get a copy of the held list, defer/go/FuncLit bodies are not descended
// into.
type scanner struct {
	info    *types.Info
	fnName  string
	table   map[string]*fnLocks
	acquire func(call *ast.CallExpr, id, expr, via string, held []heldLock)
	blocked func(call *ast.CallExpr, kind, callee string, held []heldLock)
	inherit func(sub *fnLocks) // callee edges, for summarization; may be nil
}

func (sc *scanner) stmts(list []ast.Stmt, held []heldLock) []heldLock {
	for _, s := range list {
		switch st := s.(type) {
		case *ast.ExprStmt:
			if l, acquired, ok := sc.lockOp(st.X); ok {
				call := ast.Unparen(st.X).(*ast.CallExpr)
				if acquired {
					sc.acquire(call, l.id, l.expr, "", held)
					held = append(held, l)
				} else {
					held = release(held, l)
				}
				continue
			}
			sc.exprs(st.X, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held to function end; the
			// deferred call itself runs outside the current window.
			continue
		case *ast.GoStmt:
			continue
		case *ast.BlockStmt:
			sc.stmts(st.List, copyHeld(held))
		case *ast.IfStmt:
			sc.stmtExprs(st.Init, held)
			sc.exprs(st.Cond, held)
			sc.stmts(st.Body.List, copyHeld(held))
			if st.Else != nil {
				sc.stmts([]ast.Stmt{st.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			sc.stmtExprs(st.Init, held)
			if st.Cond != nil {
				sc.exprs(st.Cond, held)
			}
			sc.stmtExprs(st.Post, held)
			sc.stmts(st.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			sc.exprs(st.X, held)
			sc.stmts(st.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			sc.stmtExprs(st.Init, held)
			if st.Tag != nil {
				sc.exprs(st.Tag, held)
			}
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					sc.stmts(cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					sc.stmts(cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					sc.stmts(cc.Body, copyHeld(held))
				}
			}
		case *ast.LabeledStmt:
			held = sc.stmts([]ast.Stmt{st.Stmt}, held)
		default:
			sc.stmtExprs(s, held)
		}
	}
	return held
}

func copyHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

// release removes the most recent held entry matching l's class
// (preferring an exact expression match).
func release(held []heldLock, l heldLock) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].id == l.id && held[i].expr == l.expr {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].id == l.id {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

func (sc *scanner) stmtExprs(s ast.Stmt, held []heldLock) {
	if s == nil {
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			sc.call(n, held)
		}
		return true
	})
}

func (sc *scanner) exprs(e ast.Expr, held []heldLock) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			sc.call(n, held)
		}
		return true
	})
}

// call classifies a non-lock-op call: direct blocking wait, or a
// summarized callee whose acquisitions and blocks are inherited.
func (sc *scanner) call(call *ast.CallExpr, held []heldLock) {
	if kind, callee, ok := blockingWait(sc.info, call); ok {
		sc.blocked(call, kind, callee, held)
		return
	}
	fn := analysis.CalleeFunc(sc.info, call)
	if fn == nil {
		return
	}
	sub, ok := sc.table[fn.FullName()]
	if !ok || sub == nil {
		return
	}
	display := displayName(fn)
	for _, kind := range sub.Blocks {
		// kind stays the base kind (facts never stack "reaches" prefixes
		// as summaries nest); the display names the first hop.
		sc.blocked(call, "reaches "+kind, display, held)
	}
	for _, id := range sub.Acquires {
		sc.acquire(call, id, "", display, held)
	}
	if sc.inherit != nil {
		sc.inherit(sub)
	}
}

// lockOp recognizes X.Lock()/RLock()/Unlock()/RUnlock() on sync types.
func (sc *scanner) lockOp(e ast.Expr) (l heldLock, acquired, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return heldLock{}, false, false
	}
	fn := analysis.CalleeFunc(sc.info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return heldLock{}, false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return heldLock{}, false, false
	}
	l = heldLock{id: sc.lockID(sel.X), expr: types.ExprString(sel.X)}
	switch fn.Name() {
	case "Lock", "RLock":
		return l, true, true
	case "Unlock", "RUnlock":
		return l, false, true
	}
	return heldLock{}, false, false
}

// lockID abstracts a mutex receiver expression to its lock class.
func (sc *scanner) lockID(e ast.Expr) string {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if selx := sc.info.Selections[x]; selx != nil {
			if n := analysis.NamedRecv(selx.Recv()); n != nil && n.Obj().Pkg() != nil {
				return qual(n.Obj().Pkg()) + "." + n.Obj().Name() + "." + x.Sel.Name
			}
		}
		if obj := sc.info.Uses[x.Sel]; obj != nil && obj.Pkg() != nil {
			return qual(obj.Pkg()) + "." + x.Sel.Name
		}
	case *ast.Ident:
		obj := sc.info.Uses[x]
		if obj == nil {
			obj = sc.info.Defs[x]
		}
		if obj == nil || obj.Pkg() == nil {
			break
		}
		// A named non-sync type embedding a mutex: the class is the type.
		if n := analysis.NamedRecv(obj.Type()); n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() != "sync" {
			return qual(n.Obj().Pkg()) + "." + n.Obj().Name()
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return qual(obj.Pkg()) + "." + obj.Name()
		}
		return qual(obj.Pkg()) + "." + sc.fnName + "." + obj.Name()
	}
	return types.ExprString(e)
}

func qual(p *types.Package) string {
	path := p.Path()
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

var wireIO = map[string]bool{
	"WriteMessage": true, "WriteFrame": true, "ReadFrame": true, "ReadRequest": true,
}

// blockingWait classifies direct calls that can block for a long,
// externally-controlled time: durability waits, fsyncs, and peer network
// reads/writes. (Short-lived disk I/O under a lock is lockio's beat.)
func blockingWait(info *types.Info, call *ast.CallExpr) (kind, callee string, ok bool) {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", "", false
	}
	path := fn.Pkg().Path()
	name := fn.Name()
	recv := recvTypeName(fn)
	switch {
	case name == "WaitDurable" && recv != "":
		return "durability wait", recv + "." + name, true
	case name == "Sync" && ((path == "os" && recv == "File") || (analysis.PkgIs(path, "wal") && recv == "Log")):
		return "fsync", recv + "." + name, true
	case path == "net" && recv != "" && (name == "Read" || name == "Write"):
		return "peer network I/O", recv + "." + name, true
	case analysis.PkgIs(path, "wire") && recv == "" && wireIO[name]:
		return "wire framing I/O", "wire." + name, true
	}
	return "", "", false
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if n := analysis.NamedRecv(sig.Recv().Type()); n != nil {
		return n.Obj().Name()
	}
	return ""
}

func displayName(fn *types.Func) string {
	if recv := recvTypeName(fn); recv != "" {
		return recv + "." + fn.Name()
	}
	return fn.Name()
}
