// Unit-config loading for `go vet -vettool=` invocations. cmd/go hands
// the tool a JSON config per package describing exactly which files to
// analyze and where every dependency's export data lives, so no `go
// list` round trip is needed in this mode.
package load

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"genalg/internal/analysis"
)

// UnitConfig mirrors the JSON config cmd/go writes for vet tools (the
// fields this driver consumes; unknown fields are ignored).
type UnitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// ReadUnitConfig parses a vet.cfg file.
func ReadUnitConfig(path string) (*UnitConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := &UnitConfig{}
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return cfg, nil
}

// ImportedFacts reads and merges the fact files cmd/go recorded for the
// unit's dependencies (PackageVetx). Missing or empty files — a
// dependency vetted by an older tool, or one that exports no facts —
// contribute nothing rather than failing the run.
func ImportedFacts(cfg *UnitConfig) *analysis.FactSet {
	merged := analysis.NewFactSet()
	for _, path := range cfg.PackageVetx {
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		fs, err := analysis.DecodeFactSet(data)
		if err != nil {
			continue
		}
		merged.Merge(fs)
	}
	return merged
}

// UnitPackage parses and type-checks the single package described by
// cfg, resolving imports through the export files cmd/go listed.
func UnitPackage(cfg *UnitConfig) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := analysis.NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}
	return &Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Package: &analysis.Package{
			Fset:      fset,
			Files:     files,
			Pkg:       tpkg,
			TypesInfo: info,
		},
	}, nil
}
