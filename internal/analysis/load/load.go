// Package load turns package patterns into parsed, type-checked
// analysis.Packages without importing golang.org/x/tools/go/packages. It
// shells out to `go list -deps -export -json`, which compiles (or reuses
// from the build cache) export data for every dependency, then
// type-checks only the target packages from source; imports resolve
// through the gc export-data importer, so loading stays fast no matter
// how deep the dependency tree is.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"genalg/internal/analysis"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Package pairs a type-checked target with its file set of origin.
type Package struct {
	ImportPath string
	Dir        string
	// Imports lists the package's direct imports (for bottom-up fact
	// computation; see ComputeFacts).
	Imports []string
	*analysis.Package
}

// Packages loads the packages matching patterns, rooted at dir. Targets
// are parsed and type-checked from source (with comments, so ignore
// directives survive); their dependencies come from export data.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Imports,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPkg
		if err := dec.Decode(&lp); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard && len(lp.GoFiles) > 0 {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			// No cgo in this repository; refuse rather than mis-analyze.
			return nil, fmt.Errorf("%s: cgo packages are not supported", t.ImportPath)
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := analysis.NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Imports:    t.Imports,
			Package: &analysis.Package{
				Fset:      fset,
				Files:     files,
				Pkg:       tpkg,
				TypesInfo: info,
			},
		})
	}
	return pkgs, nil
}

// ComputeFacts fills each target package's Facts, walking the targets'
// import graph bottom-up so a package sees its dependencies' summaries
// (standalone-mode counterpart of the vetx files cmd/go shuttles
// between vettool invocations). Dependencies outside the target set —
// the standard library, mainly — contribute no facts, which the
// analyzers treat conservatively.
func ComputeFacts(pkgs []*Package, computers []*analysis.FactComputer) error {
	if len(computers) == 0 {
		return nil
	}
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	done := map[string]bool{}
	var visit func(p *Package) error
	visit = func(p *Package) error {
		if done[p.ImportPath] {
			return nil
		}
		done[p.ImportPath] = true
		imported := analysis.NewFactSet()
		for _, dep := range p.Imports {
			dp, ok := byPath[dep]
			if !ok {
				continue
			}
			if err := visit(dp); err != nil {
				return err
			}
			imported.Merge(dp.Facts)
		}
		facts, err := analysis.ComputeFacts(p.Package, imported, computers)
		if err != nil {
			return err
		}
		p.Facts = facts
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return err
		}
	}
	return nil
}
