package obs

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("q.test", 10, 20, 30)
	// 10 observations uniform in (0,10], 10 in (10,20].
	for i := 1; i <= 20; i++ {
		h.Observe(float64(i))
	}
	// p50: rank 10 falls exactly at the top of the first bucket.
	if got := h.Quantile(0.50); math.Abs(got-10) > 1e-9 {
		t.Errorf("p50 = %g, want 10", got)
	}
	// p75: rank 15 is halfway through the (10,20] bucket.
	if got := h.Quantile(0.75); math.Abs(got-15) > 1e-9 {
		t.Errorf("p75 = %g, want 15", got)
	}
	// p100 clamps to the containing bucket's upper bound.
	if got := h.Quantile(1); math.Abs(got-20) > 1e-9 {
		t.Errorf("p100 = %g, want 20", got)
	}
	// Out-of-range q is clamped.
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Errorf("q=-1 not clamped: %g", got)
	}
}

func TestHistogramQuantileOverflow(t *testing.T) {
	r := New()
	h := r.Histogram("q.inf", 1, 2)
	h.Observe(100) // lands in +Inf bucket
	// All mass above the last finite bound: clamp to it.
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("overflow p99 = %g, want 2 (last finite bound)", got)
	}
	if got := bucketQuantile(nil, 0, 0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}

func TestMetricQuantileMatchesHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("q.snap", 1, 10, 100)
	for i := 0; i < 50; i++ {
		h.Observe(float64(i))
	}
	var m Metric
	for _, s := range r.Snapshot() {
		if s.Name == "q.snap" {
			m = s
		}
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got, want := m.Quantile(q), h.Quantile(q); got != want {
			t.Errorf("Metric.Quantile(%g) = %g, histogram says %g", q, got, want)
		}
	}
	if (Metric{Kind: "counter"}).Quantile(0.5) != 0 {
		t.Error("non-histogram Metric.Quantile not 0")
	}
}

func TestHistogramBoundsMismatchPanics(t *testing.T) {
	r := New()
	r.Histogram("h.bounds", 1, 2, 3)
	// Same bounds (any order): fine, creation sorts them.
	r.Histogram("h.bounds", 3, 2, 1)
	// No bounds: always returns the existing histogram.
	r.Histogram("h.bounds")
	// Different bounds: must panic, not silently hand back 1,2,3.
	defer func() {
		if recover() == nil {
			t.Fatal("Histogram with mismatched bounds did not panic")
		}
	}()
	r.Histogram("h.bounds", 1, 2, 4)
}

func TestHistogramBoundsCountMismatchPanics(t *testing.T) {
	r := New()
	r.Histogram("h.count", 1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Histogram with different bucket count did not panic")
		}
	}()
	r.Histogram("h.count", 1, 2, 3)
}

func TestWriteTextQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("sqlang.query.seconds")
	for i := 0; i < 10; i++ {
		h.Observe(0.005)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"p50=", "p95=", "p99="} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText missing %q:\n%s", want, out)
		}
	}
}

// TestWritePrometheusGolden pins the exposition format byte-for-byte for a
// fixed registry: sorted metrics, # TYPE lines, cumulative buckets with a
// final +Inf, _sum/_count, and dotted names sanitised to underscores.
func TestWritePrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("etl.records_ok").Add(7)
	r.Gauge("storage.pool.hit-ratio").Set(0.75)
	r.GaugeFunc("warehouse.quarantine.records", func() float64 { return 3 })
	h := r.Histogram("sqlang.query.seconds", 0.001, 0.01, 0.1)
	h.Observe(0.0005)
	h.Observe(0.002)
	h.Observe(0.002)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE etl_records_ok counter
etl_records_ok 7
# TYPE sqlang_query_seconds histogram
sqlang_query_seconds_bucket{le="0.001"} 1
sqlang_query_seconds_bucket{le="0.01"} 3
sqlang_query_seconds_bucket{le="0.1"} 3
sqlang_query_seconds_bucket{le="+Inf"} 4
sqlang_query_seconds_sum 5.0045
sqlang_query_seconds_count 4
# TYPE storage_pool_hit_ratio gauge
storage_pool_hit_ratio 0.75
# TYPE warehouse_quarantine_records gauge
warehouse_quarantine_records 3
`
	if got := b.String(); got != want {
		t.Fatalf("Prometheus exposition mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"etl.poll.seconds": "etl_poll_seconds",
		"9lives":           "_lives",
		"a:b_c9":           "a:b_c9",
		"hit ratio%":       "hit_ratio_",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
