package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGetOrCreate(t *testing.T) {
	r := New()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if got := r.Counter("a.b").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := New()
	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestGaugeFuncReplace(t *testing.T) {
	r := New()
	r.GaugeFunc("f", func() float64 { return 1 })
	r.GaugeFunc("f", func() float64 { return 7 })
	for _, m := range r.Snapshot() {
		if m.Name == "f" {
			if m.Value != 7 {
				t.Fatalf("gauge func = %g, want 7 (replacement wins)", m.Value)
			}
			return
		}
	}
	t.Fatal("gauge func missing from snapshot")
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("h", 1, 10, 100)
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 555.5 {
		t.Fatalf("sum = %g", h.Sum())
	}
	bs := h.Buckets()
	if len(bs) != 4 {
		t.Fatalf("buckets = %v", bs)
	}
	for i, want := range []int64{1, 1, 1, 1} {
		if bs[i].N != want {
			t.Fatalf("bucket %d = %+v, want n=%d", i, bs[i], want)
		}
	}
	if !math.IsInf(bs[3].Le, 1) {
		t.Fatalf("last bucket bound = %g, want +Inf", bs[3].Le)
	}
}

func TestSnapshotSortedAndConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("z.count").Inc()
				r.Gauge("a.gauge").Set(float64(j))
				r.Histogram("m.hist").Observe(0.001)
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name > snap[i].Name {
			t.Fatalf("snapshot not sorted: %q > %q", snap[i-1].Name, snap[i].Name)
		}
	}
	if snap[2].Value != 800 {
		t.Fatalf("z.count = %g, want 800", snap[2].Value)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := New()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(1.25)
	r.Histogram("h").Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), `"+Inf"`) {
		t.Errorf("overflow bucket not encoded: %s", buf.String())
	}
}

func TestWriteText(t *testing.T) {
	r := New()
	r.Counter("etl.rounds").Add(2)
	r.Histogram("q.seconds").Observe(0.01)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "etl.rounds") || !strings.Contains(out, "count=1") {
		t.Errorf("text snapshot missing content:\n%s", out)
	}
}

func TestSpanAndTimer(t *testing.T) {
	r := New()
	sp := StartSpan(r, "t.seconds")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Fatalf("span duration = %v", d)
	}
	stop := r.Timer("t.seconds")
	if d := stop(); d < 0 {
		t.Fatalf("timer duration = %v", d)
	}
	if n := r.Histogram("t.seconds").Count(); n != 2 {
		t.Fatalf("histogram count = %d, want 2", n)
	}
	// Zero span is a no-op.
	var zero Span
	if d := zero.End(); d != 0 {
		t.Fatalf("zero span = %v", d)
	}
	if s := StartSpan(nil, "x"); s.End() != 0 {
		t.Fatal("nil-registry span should be a no-op")
	}
}

func TestJoin(t *testing.T) {
	if got := Join("storage.pool", "", "hits"); got != "storage.pool.hits" {
		t.Fatalf("Join = %q", got)
	}
}

// TestHistogramQuantileEdgeCases pins the estimator's behaviour at the
// boundaries loadgen's percentile reporting leans on: empty histograms,
// q=0/q=1, out-of-range q, and observations past the last finite bound.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	r := New()

	empty := r.Histogram("t.empty.seconds", 1, 10)
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%v) = %v, want 0", q, got)
		}
	}

	// One bucket layout {1, 10, +Inf}; 10 observations all in (1, 10].
	h := r.Histogram("t.mid.seconds", 1, 10)
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	// q=0 has rank 0, satisfied by the empty first bucket: its upper
	// bound is the estimate.
	if got := h.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1 (first bucket bound)", got)
	}
	// q=1 lands at the top of the occupied bucket.
	if got := h.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %v, want 10", got)
	}
	// Median interpolates linearly inside (1, 10].
	if got := h.Quantile(0.5); got <= 1 || got > 10 {
		t.Errorf("Quantile(0.5) = %v, want within (1, 10]", got)
	}
	// Out-of-range q clamps rather than extrapolating.
	if got, want := h.Quantile(-3), h.Quantile(0); got != want {
		t.Errorf("Quantile(-3) = %v, want clamp to Quantile(0) = %v", got, want)
	}
	if got, want := h.Quantile(7), h.Quantile(1); got != want {
		t.Errorf("Quantile(7) = %v, want clamp to Quantile(1) = %v", got, want)
	}

	// All observations beyond the last finite bound: every quantile is
	// clamped to that bound — the layout cannot resolve the tail, and the
	// estimator must say so consistently rather than invent values.
	over := r.Histogram("t.over.seconds", 1, 10)
	for i := 0; i < 4; i++ {
		over.Observe(1e6)
	}
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := over.Quantile(q); got != 10 {
			t.Errorf("overflow-only Quantile(%v) = %v, want 10 (last finite bound)", q, got)
		}
	}

	// The snapshot-side estimator agrees with the live one.
	for _, m := range r.Snapshot() {
		if m.Name != "t.over.seconds" {
			continue
		}
		if got := m.Quantile(0.99); got != 10 {
			t.Errorf("snapshot Quantile(0.99) = %v, want 10", got)
		}
	}
}
