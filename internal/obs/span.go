package obs

import "time"

// Span measures one timed region and records its duration, in seconds,
// into a histogram when ended. The zero Span is a no-op, so callers can
// thread an optional span without nil checks.
type Span struct {
	hist  *Histogram
	start time.Time
}

// StartSpan begins timing against the named histogram of r (created with
// DurationBuckets on first use). A nil registry returns a no-op span.
func StartSpan(r *Registry, name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{hist: r.Histogram(name), start: time.Now()}
}

// End stops the span, records the elapsed seconds, and returns the
// duration. Safe to call on the zero Span (returns 0, records nothing).
func (s Span) End() time.Duration {
	if s.hist == nil {
		return 0
	}
	d := time.Since(s.start)
	s.hist.Observe(d.Seconds())
	return d
}

// Timer returns a stop function that records the elapsed seconds into the
// named histogram — the closure form of StartSpan for defer-style use:
//
//	defer reg.Timer("etl.poll.seconds")()
func (r *Registry) Timer(name string) func() time.Duration {
	s := StartSpan(r, name)
	return s.End
}
