package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in Prometheus text exposition
// format 0.0.4: counters and gauges as single samples, histograms as
// cumulative _bucket{le="..."} series plus _sum and _count. Dotted metric
// names are sanitised to the Prometheus grammar (dots and other invalid
// runes become underscores).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.Snapshot() {
		name := promName(m.Name)
		var err error
		switch m.Kind {
		case "counter":
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", name, name, promFloat(m.Value))
		case "gauge":
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(m.Value))
		case "histogram":
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			var cum int64
			for _, b := range m.Buckets {
				cum += b.N
				le := "+Inf"
				if !math.IsInf(b.Le, 1) {
					le = promFloat(b.Le)
				}
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
					return err
				}
			}
			_, err = fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(m.Sum), name, int64(m.Value))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// promName maps a dotted registry name onto the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			r = '_'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// promFloat renders a sample value the way Prometheus expects: shortest
// round-trip decimal, "+Inf"/"-Inf"/"NaN" for the specials.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
