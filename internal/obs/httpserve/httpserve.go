// Package httpserve embeds an opt-in observability HTTP server: Prometheus
// and JSON metric exposition, liveness/readiness probes, trace export, and
// the standard pprof profiling endpoints. Binaries mount it behind an
// -obs-addr flag; nothing listens unless asked.
package httpserve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"

	"genalg/internal/obs"
	"genalg/internal/trace"
)

// Check is one named readiness probe: Probe returns nil when the component
// is ready to serve. Probes run on every /readyz request, so they should be
// cheap (a breaker count, a loaded flag — not a source fetch).
type Check struct {
	Name  string
	Probe func() error
}

// Options wires the server to the process's observability state. The zero
// value serves the default metric registry with no tracer and no readiness
// checks (readyz always succeeds).
type Options struct {
	// Registry supplies /metrics and /metrics.json; nil uses obs.Default.
	Registry *obs.Registry
	// Tracer supplies /traces; nil renders an empty export.
	Tracer *trace.Tracer
	// Readiness probes gate /readyz; all must pass for a 200.
	Readiness []Check
}

func (o Options) registry() *obs.Registry {
	if o.Registry != nil {
		return o.Registry
	}
	return obs.Default
}

// NewMux builds the observability handler tree:
//
//	/metrics        Prometheus text exposition (0.0.4)
//	/metrics.json   expvar-style JSON snapshot
//	/healthz        liveness (200 while the process serves requests)
//	/readyz         readiness (200 only when every probe passes)
//	/traces         stored traces as JSONL, or ?format=tree for span trees
//	/debug/pprof/   the standard runtime profiles
func NewMux(opts Options) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = opts.registry().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = opts.registry().WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		type failure struct {
			name string
			err  error
		}
		var failed []failure
		for _, c := range opts.Readiness {
			if err := c.Probe(); err != nil {
				failed = append(failed, failure{c.Name, err})
			}
		}
		if len(failed) == 0 {
			fmt.Fprintln(w, "ok")
			return
		}
		sort.Slice(failed, func(i, j int) bool { return failed[i].name < failed[j].name })
		w.WriteHeader(http.StatusServiceUnavailable)
		for _, f := range failed {
			fmt.Fprintf(w, "not ready: %s: %v\n", f.name, f.err)
		}
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "tree" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = opts.Tracer.WriteTrees(w)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = opts.Tracer.WriteJSONL(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability listener.
type Server struct {
	ln  net.Listener
	srv *http.Server

	mu       sync.Mutex
	serveErr error
	done     chan struct{}
}

// Start listens on addr (host:port; port 0 picks a free one) and serves the
// observability mux in a background goroutine until Close or Shutdown. If
// the serve loop dies unexpectedly its error is logged, retrievable via
// Err, and surfaces as a failing "obs.http" probe on /readyz of any other
// observability endpoint sharing the options' Readiness list (use
// ServeCheck to wire that).
func Start(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler: NewMux(opts),
		// A slowloris client holding headers open would pin a goroutine
		// per connection on what is a sidecar endpoint; bound it.
		ReadHeaderTimeout: 10 * time.Second,
	}
	s := &Server{ln: ln, srv: srv, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		err := srv.Serve(ln)
		// ErrServerClosed is the orderly Close/Shutdown outcome, not a
		// failure; anything else means the endpoint silently vanished.
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.mu.Lock()
			s.serveErr = err
			s.mu.Unlock()
			log.Printf("obs: http server on %s died: %v", ln.Addr(), err)
		}
	}()
	return s, nil
}

// Addr returns the bound address, useful when Start was given port 0.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Err reports why the serve loop died, or nil while it is healthy (or was
// shut down in an orderly fashion).
func (s *Server) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serveErr
}

// ServeCheck is a readiness probe that fails once the serve loop has died,
// so an unexpected exposition outage is visible instead of silent.
func (s *Server) ServeCheck() Check {
	return Check{Name: "obs.http", Probe: s.Err}
}

// Close stops the listener and any in-flight handlers immediately.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

// Shutdown gracefully stops the server: the listener closes immediately,
// in-flight handlers get until ctx expires to finish. Used by genalgd's
// drain path so a final metrics scrape isn't cut off mid-response.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}
