package httpserve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"genalg/internal/obs"
	"genalg/internal/trace"
)

func testOptions() (Options, *obs.Registry, *trace.Tracer) {
	reg := obs.New()
	reg.Counter("etl.records.ok").Add(7)
	reg.Histogram("sqlang.query.seconds", 0.001, 0.01, 0.1).Observe(0.004)
	tr := trace.New(trace.Sampling{Mode: trace.SampleAlways}, 8)
	ctx, sp := trace.Start(trace.WithTracer(context.Background(), tr), "httpserve.request")
	_, child := trace.Start(ctx, "httpserve.step")
	child.EndOK()
	sp.EndOK()
	return Options{Registry: reg, Tracer: tr}, reg, tr
}

func get(t *testing.T, mux *http.ServeMux, path string) (int, string, http.Header) {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String(), rec.Header()
}

func TestMetricsPrometheus(t *testing.T) {
	opts, _, _ := testOptions()
	code, body, hdr := get(t, NewMux(opts), "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 exposition type", ct)
	}
	for _, want := range []string{
		"# TYPE etl_records_ok counter",
		"etl_records_ok 7",
		"# TYPE sqlang_query_seconds histogram",
		`sqlang_query_seconds_bucket{le="+Inf"} 1`,
		"sqlang_query_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	// Exposition sanity: every non-comment line is "name[{labels}] value".
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if parts := strings.Fields(line); len(parts) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestMetricsJSON(t *testing.T) {
	opts, _, _ := testOptions()
	code, body, hdr := get(t, NewMux(opts), "/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if doc.Counters["etl.records.ok"] != 7 {
		t.Errorf("counters = %+v", doc.Counters)
	}
}

func TestHealthz(t *testing.T) {
	code, body, _ := get(t, NewMux(Options{}), "/healthz")
	if code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
}

func TestReadyz(t *testing.T) {
	ready := true
	mux := NewMux(Options{Readiness: []Check{
		{Name: "warehouse", Probe: func() error { return nil }},
		{Name: "etl.breakers", Probe: func() error {
			if !ready {
				return fmt.Errorf("2 breaker(s) open")
			}
			return nil
		}},
	}})
	if code, body, _ := get(t, mux, "/readyz"); code != 200 || body != "ok\n" {
		t.Fatalf("ready /readyz = %d %q", code, body)
	}
	ready = false
	code, body, _ := get(t, mux, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /readyz = %d", code)
	}
	if !strings.Contains(body, "not ready: etl.breakers: 2 breaker(s) open") {
		t.Errorf("degraded body %q does not name the failing check", body)
	}
	if strings.Contains(body, "warehouse") {
		t.Errorf("degraded body %q lists a passing check", body)
	}
}

func TestReadyzNoChecks(t *testing.T) {
	if code, _, _ := get(t, NewMux(Options{}), "/readyz"); code != 200 {
		t.Fatalf("checkless /readyz = %d", code)
	}
}

func TestTracesJSONL(t *testing.T) {
	opts, _, _ := testOptions()
	code, body, hdr := get(t, NewMux(opts), "/traces")
	if code != 200 {
		t.Fatalf("/traces = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d JSONL lines, want 1", len(lines))
	}
	var doc struct {
		TraceID string `json:"trace_id"`
		Root    string `json:"root"`
		Spans   []any  `json:"spans"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &doc); err != nil {
		t.Fatalf("invalid JSONL: %v\n%s", err, lines[0])
	}
	if doc.TraceID == "" || doc.Root != "httpserve.request" || len(doc.Spans) != 2 {
		t.Errorf("trace doc = %+v", doc)
	}
}

func TestTracesTree(t *testing.T) {
	opts, _, _ := testOptions()
	code, body, _ := get(t, NewMux(opts), "/traces?format=tree")
	if code != 200 {
		t.Fatalf("/traces?format=tree = %d", code)
	}
	if !strings.Contains(body, "httpserve.request") || !strings.Contains(body, "└─ httpserve.step") {
		t.Errorf("tree output missing spans:\n%s", body)
	}
}

func TestTracesNoTracer(t *testing.T) {
	if code, body, _ := get(t, NewMux(Options{}), "/traces"); code != 200 || body != "" {
		t.Fatalf("tracerless /traces = %d %q", code, body)
	}
}

func TestPprofIndex(t *testing.T) {
	code, body, _ := get(t, NewMux(Options{}), "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

func TestStartServesAndCloses(t *testing.T) {
	opts, _, _ := testOptions()
	s, err := Start("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(b) != "ok\n" {
		t.Fatalf("live /healthz = %d %q", resp.StatusCode, b)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/healthz"); err == nil {
		t.Error("server still serving after Close")
	}
}

func TestShutdownGraceful(t *testing.T) {
	opts, _, _ := testOptions()
	s, err := Start("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Orderly shutdown is not a serve failure.
	if err := s.Err(); err != nil {
		t.Fatalf("Err after clean Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/healthz"); err == nil {
		t.Error("server still serving after Shutdown")
	}
}

func TestServeErrRecordedAndProbeVisible(t *testing.T) {
	opts, _, _ := testOptions()
	s, err := Start("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("healthy server reports Err: %v", err)
	}
	if err := s.ServeCheck().Probe(); err != nil {
		t.Fatalf("healthy server fails its probe: %v", err)
	}
	// Yank the listener out from under Serve: the loop dies with a real
	// error (not ErrServerClosed), which must be recorded, not discarded.
	s.ln.Close()
	<-s.done
	if err := s.Err(); err == nil {
		t.Fatal("listener failure discarded: Err() == nil")
	}
	if err := s.ServeCheck().Probe(); err == nil {
		t.Fatal("ServeCheck passes after the serve loop died")
	}
}
