// Package obs is the repository's dependency-free observability substrate:
// a metrics registry of counters, gauges, and fixed-bucket histograms,
// plus a lightweight span/timer API (span.go). Every subsystem registers
// its metrics under a dotted name ("storage.pool.db.hits",
// "etl.records_ok", "sqlang.query.seconds"), so one snapshot of the
// Default registry shows where time and rows go across the whole stack.
//
// Design rules:
//
//   - No dependencies beyond the standard library; the JSON snapshot is
//     expvar-shaped so external scrapers need nothing new.
//   - Get-or-create accessors: Counter/Gauge/Histogram return the existing
//     metric when the name is already registered, so call sites never need
//     an init ceremony.
//   - Hot-path operations (Counter.Add, Gauge.Set, Histogram.Observe) are
//     lock-free or take one uncontended mutex; snapshots pay the cost.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DurationBuckets is the default histogram layout for timings, in seconds:
// 1µs to 10s, one decade per bucket. Observations above the last bound land
// in the implicit +Inf bucket.
var DurationBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// Histogram counts observations into a fixed set of cumulative-style
// buckets (upper bounds, sorted ascending) plus an implicit +Inf bucket.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last is +Inf
	sum    float64
	n      int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// BucketCount is one histogram bucket in a snapshot: the count of
// observations at or below the upper bound Le (math.Inf(1) for the
// overflow bucket).
type BucketCount struct {
	Le float64
	N  int64
}

// Buckets returns a snapshot of per-bucket counts (not cumulative).
func (h *Histogram) Buckets() []BucketCount {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]BucketCount, len(h.counts))
	for i := range h.counts {
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		out[i] = BucketCount{Le: le, N: h.counts[i]}
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket holding the target rank. The estimate is bounded by
// the bucket layout: ranks landing in the +Inf overflow bucket are clamped
// to the last finite bound. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	return bucketQuantile(h.Buckets(), h.Count(), q)
}

// bucketQuantile estimates a quantile from per-bucket (non-cumulative)
// counts. Shared by Histogram.Quantile and Metric.Quantile so live metrics
// and snapshots agree.
func bucketQuantile(buckets []BucketCount, n int64, q float64) float64 {
	if n == 0 || len(buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	lastFinite := 0.0
	for _, b := range buckets {
		if !math.IsInf(b.Le, 1) {
			lastFinite = b.Le
		}
	}
	lo := 0.0
	var cum int64
	for _, b := range buckets {
		prev := cum
		cum += b.N
		if float64(cum) >= rank {
			if math.IsInf(b.Le, 1) {
				return lastFinite
			}
			if b.N == 0 {
				return b.Le
			}
			return lo + (b.Le-lo)*(rank-float64(prev))/float64(b.N)
		}
		if !math.IsInf(b.Le, 1) {
			lo = b.Le
		}
	}
	return lastFinite
}

// Registry holds named metrics. The zero value is not usable; call New.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gfuncs   map[string]func() float64
	hists    map[string]*Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		gfuncs:   map[string]func() float64{},
		hists:    map[string]*Histogram{},
	}
}

// Default is the process-wide registry the stack's subsystems report into.
var Default = New()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// GaugeFunc registers (or replaces) a gauge whose value is computed at
// snapshot time. Replacement semantics let short-lived owners (a test's
// buffer pool, a rebuilt warehouse) re-register the same name without
// leaking stale closures.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gfuncs[name] = fn
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (DurationBuckets when none are given). Bounds
// are fixed at creation: asking for an existing histogram with different
// explicit bounds panics — returning it silently would hand the caller a
// histogram with surprising buckets, and the two call sites can never both
// be right. Calls without bounds always return the existing histogram.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		h.checkBounds(name, bounds)
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		h.checkBounds(name, bounds)
		return h
	}
	if len(bounds) == 0 {
		bounds = DurationBuckets
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	h = &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
	r.hists[name] = h
	return h
}

// checkBounds panics when explicitly requested bounds disagree with the
// histogram's existing layout (after the same sort-and-copy normalisation
// creation applies). No-bounds lookups always pass.
func (h *Histogram) checkBounds(name string, bounds []float64) {
	if len(bounds) == 0 {
		return
	}
	want := make([]float64, len(bounds))
	copy(want, bounds)
	sort.Float64s(want)
	h.mu.Lock()
	have := make([]float64, len(h.bounds))
	copy(have, h.bounds)
	h.mu.Unlock()
	if len(want) != len(have) {
		panic(fmt.Sprintf("obs: histogram %q already registered with %d buckets, requested %d", name, len(have), len(want)))
	}
	for i := range want {
		if want[i] != have[i] {
			panic(fmt.Sprintf("obs: histogram %q already registered with bounds %v, requested %v", name, have, want))
		}
	}
}

// Reset drops every metric. Intended for tests.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = map[string]*Counter{}
	r.gauges = map[string]*Gauge{}
	r.gfuncs = map[string]func() float64{}
	r.hists = map[string]*Histogram{}
}

// Metric is one snapshot entry.
type Metric struct {
	Name string
	Kind string // "counter", "gauge", "histogram"
	// Value holds the counter/gauge value; for histograms it is the count.
	Value float64
	// Sum and Buckets are set for histograms only.
	Sum     float64
	Buckets []BucketCount
}

// Quantile estimates the q-quantile of a histogram snapshot entry by
// linear interpolation within its buckets (0 for non-histograms).
func (m Metric) Quantile(q float64) float64 {
	if m.Kind != "histogram" {
		return 0
	}
	return bucketQuantile(m.Buckets, int64(m.Value), q)
}

// Snapshot returns every metric, sorted by name (kind breaks ties), with
// gauge funcs evaluated. Safe to call concurrently with updates.
func (r *Registry) Snapshot() []Metric {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	gfuncs := make(map[string]func() float64, len(r.gfuncs))
	for k, v := range r.gfuncs {
		gfuncs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()

	var out []Metric
	for name, c := range counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, fn := range gfuncs {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: fn()})
	}
	for name, h := range hists {
		out = append(out, Metric{
			Name: name, Kind: "histogram",
			Value: float64(h.Count()), Sum: h.Sum(), Buckets: h.Buckets(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// WriteText renders an aligned human-readable snapshot, one metric per
// line. Histograms show count, sum, mean, and estimated p50/p95/p99.
func (r *Registry) WriteText(w io.Writer) error {
	for _, m := range r.Snapshot() {
		var err error
		switch m.Kind {
		case "histogram":
			mean := 0.0
			if m.Value > 0 {
				mean = m.Sum / m.Value
			}
			_, err = fmt.Fprintf(w, "%-9s %-44s count=%d sum=%.6g mean=%.6g p50=%.3g p95=%.3g p99=%.3g\n",
				m.Kind, m.Name, int64(m.Value), m.Sum, mean,
				m.Quantile(0.50), m.Quantile(0.95), m.Quantile(0.99))
		default:
			_, err = fmt.Fprintf(w, "%-9s %-44s %g\n", m.Kind, m.Name, m.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes an expvar-style JSON snapshot: counters and gauges as
// name->number, histograms as name->{count,sum,buckets:[{le,n}]}. The +Inf
// bucket bound is encoded as the string "+Inf" (JSON has no infinity).
func (r *Registry) WriteJSON(w io.Writer) error {
	type jsonBucket struct {
		Le any   `json:"le"`
		N  int64 `json:"n"`
	}
	type jsonHist struct {
		Count   int64        `json:"count"`
		Sum     float64      `json:"sum"`
		Buckets []jsonBucket `json:"buckets"`
	}
	doc := struct {
		Counters   map[string]int64    `json:"counters"`
		Gauges     map[string]float64  `json:"gauges"`
		Histograms map[string]jsonHist `json:"histograms"`
	}{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]jsonHist{},
	}
	for _, m := range r.Snapshot() {
		switch m.Kind {
		case "counter":
			doc.Counters[m.Name] = int64(m.Value)
		case "gauge":
			doc.Gauges[m.Name] = m.Value
		case "histogram":
			jh := jsonHist{Count: int64(m.Value), Sum: m.Sum}
			for _, b := range m.Buckets {
				le := any(b.Le)
				if math.IsInf(b.Le, 1) {
					le = "+Inf"
				}
				jh.Buckets = append(jh.Buckets, jsonBucket{Le: le, N: b.N})
			}
			doc.Histograms[m.Name] = jh
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Join builds a dotted metric name from parts, skipping empties:
// Join("storage.pool", "db", "hits") -> "storage.pool.db.hits".
func Join(parts ...string) string {
	var kept []string
	for _, p := range parts {
		if p != "" {
			kept = append(kept, p)
		}
	}
	return strings.Join(kept, ".")
}
