// Package wal implements the write-ahead log behind the engine's crash
// durability (DESIGN.md §8). The log is an append-only stream of
// checksummed frames, one frame per transaction (a DML statement or a DDL
// operation): either the whole frame is durable or the transaction never
// happened, so recovery needs no undo and a torn tail — a frame cut short
// by a crash mid-write — is simply discarded.
//
// Commit protocol: AppendTxn buffers the frame into the file under the
// append mutex (establishing the global transaction order) and returns its
// end offset (the LSN). WaitDurable(lsn) then blocks until an fsync covers
// that offset. Fsyncs are group-committed: the first waiter becomes the
// sync leader, sleeps a short coalescing window so concurrent commits can
// pile on, and issues one fsync for the whole batch — under a commit burst
// the fsync cost amortizes across every statement in the window.
//
// Checkpoint rewrites the log as a compacted equivalent (schema + live
// rows), fsyncs the replacement, and atomically renames it over the live
// log, so the log's length is bounded by the database size rather than its
// write history.
//
// Crash points are injected deterministically through Hooks, in the
// internal/faultsrc idiom: a hook that returns ErrSimulatedCrash poisons
// the log (every later append or sync fails), freezing the durable prefix
// exactly as a process crash at that instant would. Tests then recover
// from that prefix and assert on what survived.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"

	"genalg/internal/obs"
)

// RecType enumerates the logical operations a frame can carry.
type RecType uint8

// The record types. DML records carry encoded row bytes; deletes are
// content-addressed (the stored bytes of the doomed row) so replay does
// not depend on heap placement determinism. DDL records carry a JSON
// payload owned by the db layer.
const (
	RecInsert RecType = iota + 1
	RecDelete
	RecCreateTable
	RecCreateIndex
)

// String implements fmt.Stringer.
func (t RecType) String() string {
	switch t {
	case RecInsert:
		return "insert"
	case RecDelete:
		return "delete"
	case RecCreateTable:
		return "create-table"
	case RecCreateIndex:
		return "create-index"
	}
	return fmt.Sprintf("rectype(%d)", uint8(t))
}

// Record is one logical operation inside a transaction frame.
type Record struct {
	Type RecType
	// Table names the target relation for DML records.
	Table string
	// Data holds the encoded row (insert/delete) or the DDL JSON payload.
	Data []byte
}

// Txn is one recovered transaction: the records of a single durable frame,
// in append order.
type Txn struct {
	// Seq is the transaction's sequence number at append time.
	Seq uint64
	// Records are the transaction's operations, applied in order.
	Records []Record
}

// ErrSimulatedCrash is returned by crash hooks to freeze the log at an
// injected crash point; every subsequent operation fails with it.
var ErrSimulatedCrash = errors.New("wal: simulated crash")

// Hooks are deterministic fault-injection points (test-only; all nil in
// production). A hook returning an error — conventionally
// ErrSimulatedCrash — aborts the operation and poisons the log.
type Hooks struct {
	// AfterAppend runs after a frame's bytes reach the file but before the
	// transaction can become durable (crash-after-append: the tail may be
	// lost or torn).
	AfterAppend func(lsn int64) error
	// BeforeSync runs immediately before an fsync (crash-mid-fsync: the
	// batch's bytes are written but none are guaranteed durable).
	BeforeSync func() error
	// AfterSync runs after a successful fsync with the covered offset.
	AfterSync func(lsn int64) error
	// BeforeCheckpointRename runs after the replacement log is written and
	// fsynced but before it replaces the live log (crash-before-checkpoint:
	// recovery must use the old log and ignore the orphaned rewrite).
	BeforeCheckpointRename func() error
}

// Options configures a Log.
type Options struct {
	// GroupWindow is how long a sync leader waits for concurrent commits
	// to join its fsync. 0 means sync immediately (no coalescing);
	// DefaultGroupWindow is a good production value.
	GroupWindow time.Duration
	// Registry receives the log's metrics; nil uses obs.Default.
	Registry *obs.Registry
	// Hooks inject deterministic crash points; zero value in production.
	Hooks Hooks
}

// DefaultGroupWindow is the fsync-coalescing window used by genalgd: long
// enough to batch a commit burst, short enough to be invisible at
// interactive latencies.
const DefaultGroupWindow = 500 * time.Microsecond

// frame layout: u32 payload length, u32 CRC-32C of the payload, payload.
// payload: u64 seq, u32 record count, then per record: u8 type,
// u16 table length + bytes, u32 data length + bytes.
const frameHdrLen = 8

// MaxFrameLen bounds a single transaction frame (and therefore a single
// DML statement's logged volume); a length prefix beyond it is treated as
// corruption during recovery.
const MaxFrameLen = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Log is an open write-ahead log positioned for append.
type Log struct {
	path string
	reg  *obs.Registry

	// mu serializes appends and protects the fields below.
	mu       sync.Mutex
	f        *os.File
	appended int64 // file offset after the last appended frame
	seq      uint64
	broken   error // sticky failure: set once, fails everything after

	// syncMu guards the group-commit state.
	syncMu  sync.Mutex
	synced  int64 // highest offset covered by a successful fsync
	syncing bool
	syncCh  chan struct{} // closed and replaced on every sync completion

	window time.Duration
	hooks  Hooks
}

// Recovery reports what Open found in an existing log.
type Recovery struct {
	// Txns is the number of durable transactions replayable from the log.
	Txns int
	// ValidBytes is the length of the durable prefix.
	ValidBytes int64
	// TornBytes is how many trailing bytes were discarded as a torn or
	// corrupt tail (0 for a cleanly closed log).
	TornBytes int64
}

// Open reads the log at path (creating it if absent), decodes its durable
// prefix, truncates any torn tail, and returns the log positioned for
// append plus the recovered transactions in append order. A leftover
// checkpoint rewrite (path + ".ckpt", orphaned by a crash before rename)
// is removed: the live log is authoritative until the rename happens.
func Open(path string, opts Options) (*Log, []Txn, Recovery, error) {
	if err := removeStaleCheckpoint(path); err != nil {
		return nil, nil, Recovery{}, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, Recovery{}, fmt.Errorf("wal: open %s: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, Recovery{}, fmt.Errorf("wal: read %s: %w", path, err)
	}
	txns, validLen := Decode(data)
	rec := Recovery{Txns: len(txns), ValidBytes: validLen, TornBytes: int64(len(data)) - validLen}
	if rec.TornBytes > 0 {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, Recovery{}, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, Recovery{}, fmt.Errorf("wal: syncing truncation of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(validLen, 0); err != nil {
		f.Close()
		return nil, nil, Recovery{}, fmt.Errorf("wal: seeking %s: %w", path, err)
	}
	l := &Log{
		path:     path,
		reg:      opts.registry(),
		f:        f,
		appended: validLen,
		synced:   validLen,
		syncCh:   make(chan struct{}),
		window:   opts.GroupWindow,
		hooks:    opts.Hooks,
	}
	if len(txns) > 0 {
		l.seq = txns[len(txns)-1].Seq
	}
	return l, txns, rec, nil
}

func (o Options) registry() *obs.Registry {
	if o.Registry != nil {
		return o.Registry
	}
	return obs.Default
}

// removeStaleCheckpoint deletes an orphaned checkpoint rewrite left by a
// crash between writing path+".ckpt" and renaming it over the live log.
func removeStaleCheckpoint(path string) error {
	ckpt := path + ".ckpt"
	if _, err := os.Stat(ckpt); err == nil {
		if err := os.Remove(ckpt); err != nil {
			return fmt.Errorf("wal: removing stale checkpoint %s: %w", ckpt, err)
		}
	}
	return nil
}

// Decode parses data as a frame stream, returning the transactions of
// every complete, checksum-valid frame prefix and the byte length of that
// durable prefix. Decoding stops at the first torn or corrupt frame; the
// remainder is the caller's torn tail.
func Decode(data []byte) ([]Txn, int64) {
	var txns []Txn
	off := 0
	for {
		if off+frameHdrLen > len(data) {
			break
		}
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		want := binary.LittleEndian.Uint32(data[off+4:])
		if plen <= 0 || plen > MaxFrameLen || off+frameHdrLen+plen > len(data) {
			break
		}
		payload := data[off+frameHdrLen : off+frameHdrLen+plen]
		if crc32.Checksum(payload, crcTable) != want {
			break
		}
		txn, ok := decodePayload(payload)
		if !ok {
			break
		}
		txns = append(txns, txn)
		off += frameHdrLen + plen
	}
	return txns, int64(off)
}

func decodePayload(p []byte) (Txn, bool) {
	if len(p) < 12 {
		return Txn{}, false
	}
	txn := Txn{Seq: binary.LittleEndian.Uint64(p)}
	count := int(binary.LittleEndian.Uint32(p[8:]))
	off := 12
	for i := 0; i < count; i++ {
		if off+3 > len(p) {
			return Txn{}, false
		}
		r := Record{Type: RecType(p[off])}
		tlen := int(binary.LittleEndian.Uint16(p[off+1:]))
		off += 3
		if off+tlen+4 > len(p) {
			return Txn{}, false
		}
		r.Table = string(p[off : off+tlen])
		off += tlen
		dlen := int(binary.LittleEndian.Uint32(p[off:]))
		off += 4
		if dlen < 0 || off+dlen > len(p) {
			return Txn{}, false
		}
		r.Data = append([]byte(nil), p[off:off+dlen]...)
		off += dlen
		txn.Records = append(txn.Records, r)
	}
	if off != len(p) {
		return Txn{}, false
	}
	return txn, true
}

// encodeFrame renders a transaction as one checksummed frame.
func encodeFrame(seq uint64, recs []Record) []byte {
	plen := 12
	for _, r := range recs {
		plen += 3 + len(r.Table) + 4 + len(r.Data)
	}
	buf := make([]byte, frameHdrLen+plen)
	payload := buf[frameHdrLen:]
	binary.LittleEndian.PutUint64(payload, seq)
	binary.LittleEndian.PutUint32(payload[8:], uint32(len(recs)))
	off := 12
	for _, r := range recs {
		payload[off] = byte(r.Type)
		binary.LittleEndian.PutUint16(payload[off+1:], uint16(len(r.Table)))
		off += 3
		off += copy(payload[off:], r.Table)
		binary.LittleEndian.PutUint32(payload[off:], uint32(len(r.Data)))
		off += 4
		off += copy(payload[off:], r.Data)
	}
	binary.LittleEndian.PutUint32(buf, uint32(plen))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, crcTable))
	return buf
}

// AppendTxn appends one transaction frame and returns the LSN (file offset
// after the frame) to pass to WaitDurable. The append order under the
// internal mutex is the global transaction order; callers serialize their
// state mutation with their own append so the two orders agree.
func (l *Log) AppendTxn(recs []Record) (int64, error) {
	if len(recs) == 0 {
		return 0, fmt.Errorf("wal: empty transaction")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return 0, l.broken
	}
	l.seq++
	frame := encodeFrame(l.seq, recs)
	//genalgvet:ignore lockio l.mu is the append mutex: the file write must happen inside it so the on-disk frame order equals the transaction order
	if _, err := l.f.Write(frame); err != nil {
		l.broken = fmt.Errorf("wal: append: %w", err)
		return 0, l.broken
	}
	l.appended += int64(len(frame))
	lsn := l.appended
	l.reg.Counter("wal.appends").Inc()
	l.reg.Counter("wal.appended.bytes").Add(int64(len(frame)))
	if h := l.hooks.AfterAppend; h != nil {
		if err := h(lsn); err != nil {
			l.broken = err
			return 0, err
		}
	}
	return lsn, nil
}

// WaitDurable blocks until an fsync covers lsn, group-committing with any
// concurrent callers: the first waiter becomes the sync leader, sleeps the
// coalescing window, and fsyncs once for everyone who appended meanwhile.
func (l *Log) WaitDurable(lsn int64) error {
	for {
		l.syncMu.Lock()
		if l.synced >= lsn {
			l.syncMu.Unlock()
			return nil
		}
		syncing := l.syncing
		ch := l.syncCh
		l.syncMu.Unlock()

		// The broken check runs with syncMu released: brokenErr takes mu,
		// and Checkpoint holds mu while publishing the durable watermark
		// under syncMu, so a syncMu->mu edge here would close a lock-order
		// cycle. broken is sticky (set once, never cleared), so the check
		// does not need to be atomic with the watermark read above.
		if err := l.brokenErr(); err != nil {
			return err
		}

		if syncing {
			<-ch
			continue
		}

		l.syncMu.Lock()
		if l.synced >= lsn || l.syncing {
			// The world moved while broken was checked: a leader appeared
			// or finished. Re-evaluate from the top.
			l.syncMu.Unlock()
			continue
		}
		l.syncing = true
		l.syncMu.Unlock()

		if l.window > 0 {
			time.Sleep(l.window)
		}
		err := l.syncNow()

		l.syncMu.Lock()
		l.syncing = false
		close(l.syncCh)
		l.syncCh = make(chan struct{})
		l.syncMu.Unlock()
		if err != nil {
			return err
		}
	}
}

// syncNow fsyncs the file, advancing the durable watermark to the offset
// appended at the time of the call.
func (l *Log) syncNow() error {
	l.mu.Lock()
	target := l.appended
	if l.broken != nil {
		err := l.broken
		l.mu.Unlock()
		return err
	}
	if h := l.hooks.BeforeSync; h != nil {
		if err := h(); err != nil {
			l.broken = err
			l.mu.Unlock()
			return err
		}
	}
	//genalgvet:ignore lockio,lockorder the fsync must cover exactly the appended prefix; racing appends past the captured target would be fine, but a cheap mutex keeps the durable watermark reasoning simple
	err := l.f.Sync()
	if err != nil {
		l.broken = fmt.Errorf("wal: fsync: %w", err)
		err = l.broken
	}
	l.mu.Unlock()
	if err != nil {
		return err
	}
	l.reg.Counter("wal.fsyncs").Inc()
	l.syncMu.Lock()
	if target > l.synced {
		l.synced = target
	}
	l.syncMu.Unlock()
	if h := l.hooks.AfterSync; h != nil {
		if herr := h(target); herr != nil {
			l.poison(herr)
			return herr
		}
	}
	return nil
}

func (l *Log) brokenErr() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.broken
}

// poison marks the log permanently failed (simulated crash or I/O error).
func (l *Log) poison(err error) {
	l.mu.Lock()
	if l.broken == nil {
		l.broken = err
	}
	l.mu.Unlock()
}

// Sync forces an immediate fsync of everything appended (used at clean
// shutdown; commits should use WaitDurable).
func (l *Log) Sync() error { return l.syncNow() }

// Size returns the appended length of the live log in bytes — the
// checkpoint-threshold input.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// SyncedLSN returns the highest offset covered by a successful fsync: the
// durable prefix a crash at this instant would preserve.
func (l *Log) SyncedLSN() int64 {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	return l.synced
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close fsyncs and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var err error
	if l.broken == nil {
		//genalgvet:ignore lockio,lockorder shutdown path: the final fsync serializes with any straggling append by design
		err = l.f.Sync()
	}
	//genalgvet:ignore lockio shutdown path: closing under the mutex stops any concurrent append from racing the file handle
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// Checkpoint writes a compacted replacement log (the frames produced by
// emit — schema DDL plus one insert per live row), fsyncs it, and
// atomically renames it over the live log. The caller must guarantee no
// concurrent AppendTxn (genalgd holds the engine's DML lock). On success
// the Log continues on the new file; on failure the old log remains
// authoritative.
func (l *Log) Checkpoint(emit func(appendTxn func(recs []Record) error) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return l.broken
	}
	ckptPath := l.path + ".ckpt"
	start := time.Now()
	//genalgvet:ignore lockio the checkpoint rewrite holds the append mutex by design: appends are excluded for the duration (callers hold the DML lock anyway)
	nf, err := os.OpenFile(ckptPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: checkpoint create: %w", err)
	}
	var written int64
	var seq uint64
	appendTxn := func(recs []Record) error {
		seq++
		frame := encodeFrame(seq, recs)
		if _, err := nf.Write(frame); err != nil {
			return fmt.Errorf("wal: checkpoint write: %w", err)
		}
		written += int64(len(frame))
		return nil
	}
	if err := emit(appendTxn); err != nil {
		nf.Close()          //genalgvet:ignore lockio checkpoint rewrite holds the append mutex by design (see OpenFile above)
		os.Remove(ckptPath) //genalgvet:ignore lockio checkpoint rewrite holds the append mutex by design
		return err
	}
	//genalgvet:ignore lockio,lockorder checkpoint rewrite holds the append mutex by design
	if err := nf.Sync(); err != nil {
		nf.Close()          //genalgvet:ignore lockio checkpoint rewrite holds the append mutex by design
		os.Remove(ckptPath) //genalgvet:ignore lockio checkpoint rewrite holds the append mutex by design
		return fmt.Errorf("wal: checkpoint sync: %w", err)
	}
	if h := l.hooks.BeforeCheckpointRename; h != nil {
		if err := h(); err != nil {
			nf.Close() //genalgvet:ignore lockio checkpoint rewrite holds the append mutex by design
			l.broken = err
			return err
		}
	}
	//genalgvet:ignore lockio the atomic rename is the checkpoint's commit point; it must complete before appends resume
	if err := os.Rename(ckptPath, l.path); err != nil {
		nf.Close()          //genalgvet:ignore lockio checkpoint rewrite holds the append mutex by design
		os.Remove(ckptPath) //genalgvet:ignore lockio checkpoint rewrite holds the append mutex by design
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	//genalgvet:ignore lockorder the rename's directory fsync is part of the checkpoint commit: it must land before appends resume on the new file
	syncDir(l.path)
	old := l.f
	l.f = nf
	l.appended = written
	l.seq = seq
	old.Close() //genalgvet:ignore lockio the replaced log's handle must close before appends resume on the new file
	l.syncMu.Lock()
	l.synced = written
	l.syncMu.Unlock()
	l.reg.Counter("wal.checkpoints").Inc()
	l.reg.Histogram("wal.checkpoint.seconds").Observe(time.Since(start).Seconds())
	return nil
}

// syncDir best-effort fsyncs the directory containing path so the
// checkpoint rename itself is durable.
func syncDir(path string) {
	dir := "."
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			dir = path[:i]
			if dir == "" {
				dir = "/"
			}
			break
		}
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
