package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"genalg/internal/obs"
)

func testOpts() Options {
	return Options{Registry: obs.New()}
}

func mkTxn(table string, n int) []Record {
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, Record{Type: RecInsert, Table: table, Data: []byte(fmt.Sprintf("row-%d", i))})
	}
	return recs
}

func TestAppendReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, txns, rec, err := Open(path, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 0 || rec.Txns != 0 || rec.TornBytes != 0 {
		t.Fatalf("fresh log not empty: %+v", rec)
	}
	want := [][]Record{
		mkTxn("frags", 3),
		{{Type: RecCreateTable, Data: []byte(`{"table":"t"}`)}},
		{{Type: RecDelete, Table: "frags", Data: []byte("row-1")},
			{Type: RecInsert, Table: "frags", Data: []byte("row-1b")}},
	}
	for _, recs := range want {
		lsn, err := l.AppendTxn(recs)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, got, rec, err := Open(path, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rec.TornBytes != 0 {
		t.Fatalf("clean log reported torn bytes: %+v", rec)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d txns, want %d", len(got), len(want))
	}
	for i, txn := range got {
		if txn.Seq != uint64(i+1) {
			t.Errorf("txn %d has seq %d", i, txn.Seq)
		}
		if len(txn.Records) != len(want[i]) {
			t.Fatalf("txn %d has %d records, want %d", i, len(txn.Records), len(want[i]))
		}
		for j, r := range txn.Records {
			w := want[i][j]
			if r.Type != w.Type || r.Table != w.Table || !bytes.Equal(r.Data, w.Data) {
				t.Errorf("txn %d record %d = %+v, want %+v", i, j, r, w)
			}
		}
	}
}

// TestTornTailEveryByte truncates the log at every byte boundary of the
// final frame and checks that recovery yields exactly the preceding
// transactions — never an error, never a partial transaction.
func TestTornTailEveryByte(t *testing.T) {
	full := append(encodeFrame(1, mkTxn("a", 2)), encodeFrame(2, mkTxn("b", 1))...)
	lastStart := len(encodeFrame(1, mkTxn("a", 2)))
	for cut := lastStart; cut < len(full); cut++ {
		txns, valid := Decode(full[:cut])
		if len(txns) != 1 {
			t.Fatalf("cut at %d: decoded %d txns, want 1", cut, len(txns))
		}
		if valid != int64(lastStart) {
			t.Fatalf("cut at %d: valid prefix %d, want %d", cut, valid, lastStart)
		}
	}
	// The intact log decodes both.
	txns, valid := Decode(full)
	if len(txns) != 2 || valid != int64(len(full)) {
		t.Fatalf("intact log decoded %d txns valid=%d", len(txns), valid)
	}

	// Open must physically truncate a torn file and keep appending after it.
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, full[:len(full)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	l, txns2, rec, err := Open(path, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(txns2) != 1 || rec.TornBytes == 0 {
		t.Fatalf("torn open: %d txns, recovery %+v", len(txns2), rec)
	}
	lsn, err := l.AppendTxn(mkTxn("c", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, txns3, _, err := Open(path, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(txns3) != 2 || txns3[1].Records[0].Table != "c" {
		t.Fatalf("post-truncation append lost: %d txns", len(txns3))
	}
}

func TestCorruptFrameStopsDecode(t *testing.T) {
	f1 := encodeFrame(1, mkTxn("a", 1))
	f2 := encodeFrame(2, mkTxn("b", 1))
	f3 := encodeFrame(3, mkTxn("c", 1))
	data := append(append(append([]byte(nil), f1...), f2...), f3...)
	// Flip one payload byte in frame 2: its CRC fails, and everything from
	// there on is discarded even though frame 3 is intact.
	data[len(f1)+frameHdrLen+2] ^= 0xff
	txns, valid := Decode(data)
	if len(txns) != 1 || valid != int64(len(f1)) {
		t.Fatalf("corrupt mid-frame: %d txns valid=%d, want 1 txn valid=%d", len(txns), valid, len(f1))
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	reg := obs.New()
	l, _, _, err := Open(path, Options{Registry: reg, GroupWindow: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := l.AppendTxn(mkTxn("t", 1))
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = l.WaitDurable(lsn)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	fsyncs := findCounter(t, reg, "wal.fsyncs")
	appends := findCounter(t, reg, "wal.appends")
	if appends != n {
		t.Fatalf("appends = %d, want %d", appends, n)
	}
	if fsyncs == 0 || fsyncs > appends {
		t.Fatalf("fsyncs = %d out of range (appends %d)", fsyncs, appends)
	}
	t.Logf("group commit: %d commits in %d fsyncs", appends, fsyncs)
}

func findCounter(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			return int64(m.Value)
		}
	}
	return 0
}

// TestCrashAfterAppend injects a crash between append and fsync: the
// transaction's bytes are in the file but never durable, so the simulated
// durable prefix excludes it.
func TestCrashAfterAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	crash := false
	opts := testOpts()
	opts.Hooks.AfterAppend = func(lsn int64) error {
		if crash {
			return ErrSimulatedCrash
		}
		return nil
	}
	l, _, _, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.AppendTxn(mkTxn("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	durable := l.SyncedLSN()

	crash = true
	if _, err := l.AppendTxn(mkTxn("b", 1)); !errors.Is(err, ErrSimulatedCrash) {
		t.Fatalf("append after crash point: %v", err)
	}
	// The log is poisoned: nothing works until reopen.
	if _, err := l.AppendTxn(mkTxn("c", 1)); !errors.Is(err, ErrSimulatedCrash) {
		t.Fatalf("append on poisoned log: %v", err)
	}
	if l.SyncedLSN() != durable {
		t.Fatalf("durable watermark moved after crash: %d != %d", l.SyncedLSN(), durable)
	}

	// Recover from the durable prefix, as a restart after kill -9 would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	txns, _ := Decode(data[:durable])
	if len(txns) != 1 || txns[0].Records[0].Table != "a" {
		t.Fatalf("durable prefix recovered %d txns", len(txns))
	}
}

// TestCrashBeforeSync injects a crash at the fsync itself: the waiting
// commit must fail, not falsely acknowledge.
func TestCrashBeforeSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	opts := testOpts()
	opts.Hooks.BeforeSync = func() error { return ErrSimulatedCrash }
	l, _, _, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.AppendTxn(mkTxn("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(lsn); !errors.Is(err, ErrSimulatedCrash) {
		t.Fatalf("WaitDurable across crashed fsync: %v", err)
	}
	if l.SyncedLSN() != 0 {
		t.Fatalf("durable watermark advanced through crashed fsync: %d", l.SyncedLSN())
	}
}

func TestCheckpointCompactsAndSurvives(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, _, err := Open(path, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		lsn, err := l.AppendTxn(mkTxn("t", 1))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Size()
	err = l.Checkpoint(func(appendTxn func([]Record) error) error {
		return appendTxn([]Record{{Type: RecInsert, Table: "t", Data: []byte("compacted")}})
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.Size() >= before {
		t.Fatalf("checkpoint did not shrink the log: %d -> %d", before, l.Size())
	}
	// Appends continue on the new file.
	lsn, err := l.AppendTxn(mkTxn("t2", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, txns, _, err := Open(path, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 2 {
		t.Fatalf("recovered %d txns after checkpoint, want 2", len(txns))
	}
	if string(txns[0].Records[0].Data) != "compacted" || txns[1].Records[0].Table != "t2" {
		t.Fatalf("checkpoint content wrong: %+v", txns)
	}
}

// TestCrashBeforeCheckpointRename crashes after the rewrite is written but
// before it replaces the live log: recovery must use the old log and
// delete the orphaned rewrite.
func TestCrashBeforeCheckpointRename(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	opts := testOpts()
	opts.Hooks.BeforeCheckpointRename = func() error { return ErrSimulatedCrash }
	l, _, _, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		lsn, err := l.AppendTxn(mkTxn("t", 2))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	err = l.Checkpoint(func(appendTxn func([]Record) error) error {
		return appendTxn([]Record{{Type: RecInsert, Table: "t", Data: []byte("compacted")}})
	})
	if !errors.Is(err, ErrSimulatedCrash) {
		t.Fatalf("checkpoint across crash point: %v", err)
	}
	if _, err := os.Stat(path + ".ckpt"); err != nil {
		t.Fatalf("orphaned rewrite missing before reopen: %v", err)
	}
	// Restart: old log is authoritative, orphan removed.
	_, txns, rec, err := Open(path, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 5 || rec.TornBytes != 0 {
		t.Fatalf("recovered %d txns (recovery %+v), want 5", len(txns), rec)
	}
	if _, err := os.Stat(path + ".ckpt"); !os.IsNotExist(err) {
		t.Fatalf("stale checkpoint not removed: %v", err)
	}
}

func TestEmptyTxnRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, _, err := Open(path, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.AppendTxn(nil); err == nil {
		t.Fatal("empty transaction accepted")
	}
}
